"""Scheduler event loop, occupancy ledger, policies and determinism."""

import pytest

from repro.obs.registry import MetricRegistry
from repro.sim.cluster import ClusterSpec

from repro.sched import (
    ClusterScheduler,
    Job,
    JobSpec,
    JobState,
    SchedulerError,
    run_scenario,
)
from repro.sched.scheduler import _Occupancy

GIB = 2**30


def awd_job(job_id, submit_time=0.0, batches=8, stages=2, priority=0,
            pipelines=1, max_pipelines=None, weight=None):
    return Job(
        spec=JobSpec(
            job_id=job_id,
            family="awd",
            num_stages=stages,
            num_micro=4,
            total_batches=batches,
            priority=priority,
            weight=float(weight if weight is not None else priority + 1),
            pipelines=pipelines,
            min_pipelines=1,
            max_pipelines=max_pipelines if max_pipelines is not None else pipelines,
            submit_time=submit_time,
        )
    )


def run_jobs(jobs, policy="fifo", devices=4, memory=2 * GIB):
    spec = ClusterSpec(nodes=devices, gpus_per_node=1, memory_bytes=memory)
    sched = ClusterScheduler(spec, jobs, policy, registry=MetricRegistry())
    return sched.run()


# --------------------------------------------------------------------- #
# occupancy ledger


def test_occupancy_rejects_double_claim_and_foreign_release():
    occ = _Occupancy(num_devices=4)
    occ.claim([0, 1], "a")
    assert occ.free == [2, 3]
    with pytest.raises(SchedulerError, match="already owned"):
        occ.claim([1], "b")
    with pytest.raises(SchedulerError, match="not owned"):
        occ.release([2], "a")
    with pytest.raises(SchedulerError, match="not owned"):
        occ.release([0], "b")
    occ.release([0, 1], "a")
    assert occ.free == [0, 1, 2, 3]


# --------------------------------------------------------------------- #
# event loop basics


def test_single_job_runs_to_completion():
    result = run_jobs([awd_job("j00", batches=8)])
    (job,) = result.jobs
    assert job.state == JobState.DONE
    assert job.batches_done == 8
    assert job.queue_wait == 0.0
    assert result.makespan > 0
    # one 2-device job on a 4-device cluster: exactly half the cluster busy
    assert result.utilization == pytest.approx(0.5)
    assert result.busy_device_seconds == pytest.approx(job.device_seconds)


def test_infeasible_job_is_rejected_at_submit():
    # 5 stages can never fit 4 devices, even empty
    result = run_jobs([awd_job("j00", stages=5)])
    (job,) = result.jobs
    assert job.state == JobState.REJECTED
    assert result.registry.value("sched.jobs", event="rejected") == 1
    assert not job.waits


def test_queued_job_waits_for_capacity():
    # two 2-chain jobs on 4 devices: the second waits for the first
    jobs = [
        awd_job("j00", submit_time=0.0, pipelines=2, batches=20),
        awd_job("j01", submit_time=0.0, pipelines=2, batches=8),
    ]
    result = run_jobs(jobs)
    j0, j1 = result.jobs
    assert j0.queue_wait == 0.0
    assert j1.queue_wait == pytest.approx(j0.finished_at)
    assert j1.state == JobState.DONE


def test_device_time_is_conserved():
    result = run_scenario("rush", "fair", seed=0)
    per_job = sum(j.device_seconds for j in result.jobs)
    assert per_job == pytest.approx(result.busy_device_seconds, rel=1e-9)


def test_completions_beat_arrivals_on_ties():
    """A completion and an arrival at the same instant: the finishing
    job's devices must be released before the arrival is considered, so
    the arrival admits immediately instead of queueing behind a corpse."""
    first = awd_job("j00", submit_time=0.0, pipelines=2, batches=8)
    probe = run_jobs([first])
    finish = probe.jobs[0].finished_at
    jobs = [
        awd_job("j00", submit_time=0.0, pipelines=2, batches=8),
        awd_job("j01", submit_time=finish, pipelines=2, batches=8),
    ]
    result = run_jobs(jobs)
    assert result.jobs[1].queue_wait == 0.0


# --------------------------------------------------------------------- #
# policies


def test_fifo_holds_the_requested_n():
    jobs = [awd_job("j00", pipelines=2, max_pipelines=4, batches=20)]
    result = run_jobs(jobs, policy="fifo")
    (job,) = result.jobs
    assert job.n_label() == "2"  # never grown despite free devices
    assert not job.was_resized


def test_fair_share_grows_into_free_devices():
    jobs = [awd_job("j00", pipelines=1, max_pipelines=2, batches=40)]
    result = run_jobs(jobs, policy="fair")
    (job,) = result.jobs
    assert job.trajectory[0][1] == "admit"
    assert any(kind == "grow" for _, kind, _ in job.trajectory)
    assert result.registry.value("sched.resize", direction="grow") >= 1


def test_fair_share_shrinks_to_admit_an_arrival():
    """An incumbent holding the whole cluster above its floor must give a
    chain back so a newcomer with a fair claim can start."""
    jobs = [
        awd_job("j00", submit_time=0.0, pipelines=2, batches=400),
        awd_job("j01", submit_time=0.5, pipelines=1, batches=8),
    ]
    result = run_jobs(jobs, policy="fair")
    j0, j1 = result.jobs
    assert any(kind == "shrink" for _, kind, _ in j0.trajectory)
    assert j1.state == JobState.DONE
    # the newcomer started long before the incumbent's solo finish time
    assert j1.queue_wait < 1.0


def test_priority_preempts_lower_priority():
    jobs = [
        awd_job("j00", submit_time=0.0, priority=0, pipelines=2, batches=400),
        awd_job("j01", submit_time=0.5, priority=2, pipelines=2, batches=8),
    ]
    result = run_jobs(jobs, policy="priority")
    j0, j1 = result.jobs
    assert j0.was_preempted
    assert j0.checkpoints and j0.checkpoints[0].startswith("ckpt-v2-j00")
    assert j1.queue_wait == pytest.approx(0.5 - 0.5)  # admitted on arrival
    # the victim resumed and still finished all its work
    assert j0.state == JobState.DONE
    assert j0.batches_done == 400
    resumes = [k for _, k, _ in j0.trajectory if k == "resume"]
    assert resumes == ["resume"]
    assert result.registry.value("sched.jobs", event="preempted") == 1
    assert result.registry.value("sched.jobs", event="resumed") == 1


def test_priority_pointless_preemption_does_not_livelock():
    """REVIEW regression: a mid-priority gnmt head whose ~1GiB stage can
    never fit the 512MiB devices that preempting the low-priority jobs
    would free.  Victim selection by device count alone preempted them
    anyway, the admit then failed, the victims re-admitted, and
    ``run()`` cycled forever.  With fit-gated preemption the head simply
    waits for the big devices and the small jobs run unmolested."""
    import dataclasses

    MIB = 2**20
    spec = ClusterSpec(nodes=2, gpus_per_node=2, memory_bytes=2 * GIB)
    spec = dataclasses.replace(
        spec, device_memory_bytes=(2 * GIB, 512 * MIB, 2 * GIB, 512 * MIB)
    )

    def job(job_id, family, stages, priority, submit_time):
        return Job(
            spec=JobSpec(
                job_id=job_id,
                family=family,
                num_stages=stages,
                num_micro=4,
                total_batches=8,
                priority=priority,
                pipelines=1,
                max_pipelines=1,
                submit_time=submit_time,
            )
        )

    jobs = [
        job("hi", "gnmt", 2, 2, 0.0),  # holds both 2GiB devices
        job("a0", "awd", 1, 0, 0.1),
        job("a1", "awd", 1, 0, 0.2),
        job("head", "gnmt", 2, 1, 0.3),  # queue head, needs the big devices
        job("a2", "awd", 1, 0, 0.4),
    ]
    sched = ClusterScheduler(
        spec, jobs, "priority", registry=MetricRegistry(), scenario="livelock"
    )
    result = sched.run()
    assert all(j.state == JobState.DONE for j in result.jobs)
    # preempting the awd jobs could never help the gnmt head, so none
    # of them may be evicted for it
    assert result.registry.value("sched.jobs", event="preempted") == 0
    head = next(j for j in result.jobs if j.job_id == "head")
    assert head.trajectory[0][1] == "admit"


def test_priority_does_not_preempt_equal_priority():
    jobs = [
        awd_job("j00", submit_time=0.0, priority=1, pipelines=2, batches=40),
        awd_job("j01", submit_time=0.5, priority=1, pipelines=2, batches=8),
    ]
    result = run_jobs(jobs, policy="priority")
    assert not result.jobs[0].was_preempted
    assert result.jobs[1].queue_wait > 0


def test_grants_follow_the_feasibility_probe_order():
    """A job that ``best_case_fits`` accepted must actually be admissible
    on the empty cluster.  Grants used to be sorted by device id, which
    could park a big stage on a small device and make every admission
    fail even though the rank-ordered probe (big devices first, like the
    decreasing stage footprints) had proven a fitting chain exists —
    starving the job forever under every policy."""
    import dataclasses

    MIB = 2**20
    spec = ClusterSpec(nodes=2, gpus_per_node=2, memory_bytes=2 * GIB)
    spec = dataclasses.replace(
        spec, device_memory_bytes=(2 * GIB, 512 * MIB, 2 * GIB, 512 * MIB)
    )
    job = Job(
        spec=JobSpec(
            job_id="jg",
            family="gnmt",
            num_stages=3,
            num_micro=4,
            total_batches=8,
            pipelines=1,
            max_pipelines=1,
        )
    )
    sched = ClusterScheduler(spec, [job], "fifo", registry=MetricRegistry())
    assert sched.planner.best_case_fits("gnmt", 3, 4)
    result = sched.run()
    (done,) = result.jobs
    assert done.state == JobState.DONE
    # the big stages landed on the 2GiB devices, the tail on a 512MiB one
    (audit,) = done.admission_audit
    footprints, caps = audit
    assert all(f <= c for f, c in zip(footprints, caps))


def test_fair_share_respects_the_elastic_floor():
    """REVIEW regression: direct admission clamped ``fit`` only at 1, so
    a job with ``min_pipelines=2`` could be admitted at a single chain
    when exactly one chain's worth of devices was free.  The floor now
    routes it through shrink-to-admit instead."""
    jobs = [
        # incumbent: 2 chains x 2 stages = 4 of 6 devices, light weight
        awd_job("j00", submit_time=0.0, pipelines=2, batches=400, weight=0.5),
        # entrant with an elastic floor of 2 chains; only 2 devices free
        Job(
            spec=JobSpec(
                job_id="j01",
                family="awd",
                num_stages=2,
                num_micro=4,
                total_batches=8,
                weight=1.0,
                pipelines=2,
                min_pipelines=2,
                max_pipelines=2,
                submit_time=0.5,
            )
        ),
    ]
    result = run_jobs(jobs, policy="fair", devices=6)
    j0, j1 = result.jobs
    assert j1.state == JobState.DONE
    # every grant the entrant ever held honored its declared floor
    admits = [n for _, kind, n in j1.trajectory if kind in ("admit", "resume")]
    assert admits and all(n >= 2 for n in admits)
    # the incumbent gave a chain back to make room
    assert any(kind == "shrink" for _, kind, _ in j0.trajectory)


def test_fifo_admission_never_degrades_below_the_floor():
    """REVIEW regression: ``admit_static`` degraded toward 1 chain when
    memory blocked the full request, ignoring ``min_pipelines``.  With
    two 2GiB and two 512MiB devices a 2-chain gnmt can only memory-fit
    one chain — a floor of 2 must refuse that instead of narrowing."""
    import dataclasses

    from repro.sched.policies import FifoPolicy

    MIB = 2**20
    spec = ClusterSpec(nodes=2, gpus_per_node=2, memory_bytes=2 * GIB)
    spec = dataclasses.replace(
        spec, device_memory_bytes=(2 * GIB, 512 * MIB, 2 * GIB, 512 * MIB)
    )
    job = Job(
        spec=JobSpec(
            job_id="jg",
            family="gnmt",
            num_stages=2,
            num_micro=4,
            total_batches=8,
            pipelines=2,
            min_pipelines=2,
            max_pipelines=2,
        )
    )
    sched = ClusterScheduler(spec, [job], "fifo", registry=MetricRegistry())
    sched.queue.append(job)
    assert not FifoPolicy.admit_static(sched, job, 2)
    assert job.state == JobState.QUEUED and job.num_pipelines == 0
    # the same job without the floor still degrades to one chain
    relaxed = Job(spec=dataclasses.replace(job.spec, job_id="jr", min_pipelines=1))
    sched.queue.append(relaxed)
    assert FifoPolicy.admit_static(sched, relaxed, 2)
    assert relaxed.num_pipelines == 1


def test_unknown_policy_raises():
    with pytest.raises(KeyError, match="unknown policy"):
        run_jobs([awd_job("j00")], policy="lottery")


# --------------------------------------------------------------------- #
# determinism (the satellite's byte-identity requirement)


@pytest.mark.parametrize("policy", ["fifo", "priority", "fair"])
def test_same_seed_same_scenario_is_byte_identical(policy):
    a = run_scenario("smoke", policy, seed=0)
    b = run_scenario("smoke", policy, seed=0)
    assert a.log_text() == b.log_text()
    assert a.queue_wait_summary() == b.queue_wait_summary()
    assert a.makespan == b.makespan
    assert a.utilization == b.utilization
    assert a.registry.snapshot() == b.registry.snapshot()


def test_different_seeds_differ():
    a = run_scenario("smoke", "fair", seed=0)
    b = run_scenario("smoke", "fair", seed=1)
    assert a.log_text() != b.log_text()


def test_acceptance_elastic_beats_static_fifo():
    """ISSUE 9's acceptance criterion on the canned seeded scenario."""
    fifo = run_scenario("smoke", "fifo", seed=0)
    fair = run_scenario("smoke", "fair", seed=0)
    assert fair.utilization > fifo.utilization
    assert fair.queue_wait_summary()["p95"] < fifo.queue_wait_summary()["p95"]


def test_sched_metrics_published():
    result = run_scenario("smoke", "fair", seed=0)
    reg = result.registry
    assert reg.value("sched.jobs", event="submitted") == 7
    assert reg.value("sched.cluster_util") == pytest.approx(result.utilization)
    assert reg.value("sched.makespan") == pytest.approx(result.makespan)
    hist = reg.get("sched.queue_wait")
    assert hist is not None and hist.summary()["count"] == 7
    assert reg.get("sched.job_throughput").summary()["count"] == 7
