"""Profiling-based tuning (§5.2): profile collection and Equations 1-8.

The decisive test: predictions at the profiled setting must reproduce the
profile (identity), and the predictor's *ranking* over candidate settings
must correlate with ground-truth simulation — that is the property the
paper's Figure 19 depends on.
"""

import numpy as np
import pytest

from repro.core.predictor import Predictor
from repro.core.profiler import Profile, Profiler
from repro.schedules import AdvanceFPSchedule, OneFOneBSchedule, StageCosts
from repro.graph import LayerCost
from repro.sim import ClusterSpec

GIB = 2**30


def make_profiler(schedule=None, batch_size=64, k=6):
    costs = [
        LayerCost(f"l{i}", flops_per_sample=2.0e5, activation_bytes_per_sample=2.0e4, param_bytes=500_000)
        for i in range(2 * k)
    ]
    from repro.graph import partition_model

    spec = ClusterSpec(nodes=k // 2, gpus_per_node=2, memory_bytes=8 * GIB)
    partition = partition_model(costs, k, bandwidth_bytes_per_sec=spec.inter_node_bandwidth,
                                flops_per_sec=spec.peak_flops)
    return Profiler(
        layer_costs=costs,
        partition=partition,
        schedule=schedule or OneFOneBSchedule(versions=1),
        cluster_spec=spec,
        batch_size=batch_size,
        with_reference_model=True,
    )


class TestProfileCollection:
    def test_profile_picks_large_m_small_n(self):
        profiler = make_profiler()
        profile = profiler.profile()
        assert profile.n == 1
        assert profile.m >= 8
        assert profile.batch_size % profile.m == 0

    def test_profile_measurements_positive(self):
        profile = make_profiler().profile()
        assert all(t > 0 for t in profile.t_gpu)
        assert all(t >= 0 for t in profile.t_comm_total)
        assert all(m > 0 for m in profile.f_mod)

    def test_phi_integral_zero_when_not_scaled(self):
        """phi <= 1 everywhere, so the overflow integral at scale 1 is 0."""
        profile = make_profiler().profile()
        for k in range(profile.num_stages):
            assert profile.phi_integral_over(k, 1.0) == pytest.approx(0.0)

    def test_phi_integral_grows_with_scale(self):
        profile = make_profiler().profile()
        k = profile.num_stages // 2
        assert profile.phi_integral_over(k, 4.0) > 0


class TestPredictorIdentity:
    def test_identity_at_profiled_setting(self):
        """Predicting (m, n) from a profile at (m, n): Equations 2 and 8
        must return the measured values exactly."""
        profiler = make_profiler()
        profile = profiler.profile()
        pred = Predictor(profile).predict(profile.m, profile.n)
        for k in range(profile.num_stages):
            assert pred.t_gpu[k] == pytest.approx(profile.t_gpu[k], rel=1e-9)
            assert pred.f_total[k] == pytest.approx(
                profile.f_mod[k] + profile.f_dat[k], rel=1e-9
            )

    def test_memory_equation8_scaling(self):
        profile = make_profiler().profile()
        predictor = Predictor(profile)
        double_n = predictor.predict(profile.m, profile.n * 2)
        # Per-pipeline weights and data double with n*; the reference copy
        # does not (the refined Equation 8, DESIGN.md item 4).
        for k in range(profile.num_stages):
            expected = (
                2 * (profile.f_mod[k] - profile.f_ref[k])
                + profile.f_ref[k]
                + 2 * profile.f_dat[k]
            )
            assert double_n.f_total[k] == pytest.approx(expected, rel=1e-9)
        half_m = predictor.predict(profile.m // 2, profile.n)
        for k in range(profile.num_stages):
            # f_mod unchanged, f_dat doubles (micro-batches twice as large).
            expected = profile.f_mod[k] + 2 * profile.f_dat[k]
            assert half_m.f_total[k] == pytest.approx(expected, rel=1e-9)

    def test_compute_equation2_overflow_penalty(self):
        """Doubling pipelines doubles phi; where phi would clip at 100%
        the prediction must add overflow time rather than halve runtime."""
        profile = make_profiler().profile()
        predictor = Predictor(profile)
        base = predictor.predict(profile.m, 1)
        quad = predictor.predict(profile.m, 4)
        for k in range(profile.num_stages):
            # Without clipping, t_gpu would shrink 4x; with overflow it
            # cannot shrink below the volume bound.
            assert quad.t_gpu[k] >= base.t_gpu[k] / 4 - 1e-12

    def test_bubble_recursion_boundary_conditions(self):
        profile = make_profiler().profile()
        pred = Predictor(profile).predict(profile.m, profile.n)
        # Equations 6-7: up-bubble grows downstream, down-bubble upstream.
        K = profile.num_stages
        t_up = [pred.t_bub[k] for k in range(K)]
        assert pred.t_bub[0] > 0 or K == 1  # stage 0 still waits downstream

    def test_identity_holds_at_other_profile_settings(self):
        """The identity is not special to the default profile point."""
        profiler = make_profiler()
        for m, n in [(8, 2), (16, 2)]:
            profile = profiler.profile(m=m, n=n)
            pred = Predictor(profile).predict(m, n)
            for k in range(profile.num_stages):
                assert pred.t_gpu[k] == pytest.approx(profile.t_gpu[k], rel=1e-9)
                assert pred.f_total[k] == pytest.approx(
                    profile.f_mod[k] + profile.f_dat[k], rel=1e-9
                )

    def test_invalid_degrees_rejected(self):
        profile = make_profiler().profile()
        with pytest.raises(ValueError):
            Predictor(profile).predict(0, 1)


class TestPredictorRanking:
    def test_ranking_correlates_with_simulation(self):
        """Spearman-style check: the predictor's ordering of (M, N)
        settings agrees with ground-truth simulation on the clear calls."""
        profiler = make_profiler(schedule=AdvanceFPSchedule(2))
        profile = profiler.profile()
        predictor = Predictor(profile)
        settings = [(8, 1), (8, 2), (16, 1), (16, 2), (32, 2), (4, 1)]
        predicted, measured = [], []
        for m, n in settings:
            predicted.append(predictor.predict(m, n).batch_time)
            res = profiler.run_setting(m, n, iterations=2)
            measured.append(res.batch_time / n)
        pred_rank = np.argsort(np.argsort(predicted))
        meas_rank = np.argsort(np.argsort(measured))
        rho = np.corrcoef(pred_rank, meas_rank)[0, 1]
        assert rho > 0.5, f"rank correlation too weak: {rho} ({predicted} vs {measured})"

    def test_best_setting_respects_memory_limit(self):
        profile = make_profiler().profile()
        predictor = Predictor(profile)
        tight_limit = max(fm + fd for fm, fd in zip(profile.f_mod, profile.f_dat)) * 1.2
        winner, _ = predictor.best_setting([8, 16, 32], [1, 2, 3, 4], tight_limit)
        assert winner.peak_memory <= tight_limit

    def test_no_feasible_setting_raises(self):
        profile = make_profiler().profile()
        with pytest.raises(RuntimeError):
            Predictor(profile).best_setting([8], [1], memory_limit_bytes=1.0)

    def test_empty_candidates_rejected(self):
        profile = make_profiler().profile()
        with pytest.raises(ValueError):
            Predictor(profile).best_setting([], [1], 1e12)
