"""HeartbeatDetector fed from the metric registry instead of raw state.

A :class:`ClusterTelemetrySampler` publishes device/link gauges on the
sim clock; the detector (constructed with ``telemetry=registry`` and
``cluster=None``) must reach the same verdicts as the raw-resource path,
at the price of at most one sampling interval of staleness.
"""

from repro.obs import ClusterTelemetrySampler, MetricRegistry
from repro.resilience import FaultEvent, FaultInjector, FaultPlan, HeartbeatDetector
from tests.test_resilience_faults import fault_free_time, make_setup

ITERS = 6


def run_scenario(events, telemetry: bool, straggler_factor=None):
    """One seeded run; detector on the registry path or the raw path."""
    interval = fault_free_time(iterations=ITERS) / ITERS
    sim, cluster, runner = make_setup()
    if events:
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[
            FaultEvent(kind, frac * interval * ITERS, target,
                       duration=4 * interval, **extra)
            for kind, frac, target, extra in events
        ]))
    if telemetry:
        registry = MetricRegistry()
        sampler = ClusterTelemetrySampler(sim, cluster, registry,
                                          interval=interval / 4)
        sampler.start()
        detector = HeartbeatDetector(sim, runner, cluster=None,
                                     interval=interval, miss_threshold=2.0,
                                     straggler_factor=straggler_factor,
                                     telemetry=registry)
    else:
        detector = HeartbeatDetector(sim, runner, cluster=cluster,
                                     interval=interval, miss_threshold=2.0,
                                     straggler_factor=straggler_factor)
    detector.start()
    runner.run(iterations=ITERS)
    return detector


def verdicts(detector):
    return sorted((r.kind, r.target) for r in detector.reports)


def test_no_false_positives_from_telemetry():
    detector = run_scenario([], telemetry=True)
    assert detector.reports == []


def test_frozen_device_detected_through_registry():
    detector = run_scenario(
        [("device_crash", 0.37, 1, {})], telemetry=True
    )
    kinds = {r.kind for r in detector.reports}
    assert "device_crash" in kinds
    assert "pipeline_crash" not in kinds
    report = next(r for r in detector.reports if r.kind == "device_crash")
    assert report.target == 1
    assert "frozen" in report.evidence


def test_severed_link_detected_through_registry():
    detector = run_scenario(
        [("link_partition", 0.37, (0, 1), {})], telemetry=True
    )
    kinds = {r.kind for r in detector.reports}
    assert "link_partition" in kinds
    assert "pipeline_crash" not in kinds


def test_straggler_detected_through_registry_with_severity():
    detector = run_scenario(
        [("device_slowdown", 0.37, 2, {"factor": 4.0})],
        telemetry=True, straggler_factor=2.0,
    )
    stragglers = [r for r in detector.reports if r.kind == "straggler"]
    assert [r.target for r in stragglers] == [2]
    assert stragglers[0].severity > 2.0


def test_telemetry_path_agrees_with_raw_path():
    """Same deterministic scenario, both observation paths, same verdicts."""
    scenario = [("device_crash", 0.37, 1, {})]
    raw = run_scenario(scenario, telemetry=False)
    via_registry = run_scenario(scenario, telemetry=True)
    assert verdicts(raw) == verdicts(via_registry)


def test_detector_without_cluster_or_telemetry_sees_no_devices():
    interval = 0.5
    sim, cluster, runner = make_setup()
    detector = HeartbeatDetector(sim, runner, cluster=None, interval=interval)
    assert detector._observe() == []
    assert detector._observe_links() == []
