"""Job model: spec validation and the lifecycle state machine."""

import math

import pytest

from repro.sched import Job, JobSpec, JobState, JobStateError


def make_spec(**overrides):
    base = dict(
        job_id="j00",
        family="awd",
        num_stages=2,
        num_micro=4,
        total_batches=10,
        pipelines=2,
        min_pipelines=1,
        max_pipelines=3,
    )
    base.update(overrides)
    return JobSpec(**base)


# --------------------------------------------------------------------- #
# spec validation


@pytest.mark.parametrize(
    "overrides",
    [
        {"num_stages": 0},
        {"num_micro": 0},
        {"total_batches": 0},
        {"pipelines": 4},  # requested > max
        {"min_pipelines": 3, "pipelines": 2},  # min > requested
        {"min_pipelines": 0},
        {"weight": 0.0},
        {"weight": -1.0},
        {"submit_time": -0.1},
    ],
)
def test_invalid_specs_raise(overrides):
    with pytest.raises(ValueError):
        make_spec(**overrides)


def test_spec_is_frozen():
    spec = make_spec()
    with pytest.raises(Exception):
        spec.pipelines = 5


# --------------------------------------------------------------------- #
# state machine


def test_nominal_lifecycle():
    job = Job(spec=make_spec())
    assert job.state == JobState.QUEUED
    for state in (JobState.ADMITTED, JobState.RUNNING, JobState.RESIZING,
                  JobState.RUNNING, JobState.PREEMPTED, JobState.ADMITTED,
                  JobState.RUNNING, JobState.DONE):
        job.transition(state)
    assert job.is_terminal


def test_rejection_is_terminal():
    job = Job(spec=make_spec())
    job.transition(JobState.REJECTED)
    assert job.is_terminal
    with pytest.raises(JobStateError):
        job.transition(JobState.ADMITTED)


@pytest.mark.parametrize(
    "path, bad",
    [
        ((), JobState.RUNNING),  # queued cannot run without admission
        ((), JobState.DONE),
        ((JobState.ADMITTED,), JobState.DONE),  # must pass through running
        ((JobState.ADMITTED,), JobState.PREEMPTED),
        ((JobState.ADMITTED, JobState.RUNNING, JobState.DONE), JobState.RUNNING),
        ((JobState.ADMITTED, JobState.RUNNING, JobState.PREEMPTED), JobState.RUNNING),
    ],
)
def test_illegal_transitions_raise(path, bad):
    job = Job(spec=make_spec())
    for state in path:
        job.transition(state)
    with pytest.raises(JobStateError, match="illegal transition"):
        job.transition(bad)


# --------------------------------------------------------------------- #
# derived properties


def test_progress_and_finish_time():
    job = Job(spec=make_spec(total_batches=10))
    assert job.remaining_batches == 10
    job.batches_done = 4.0
    job.rate = 2.0
    assert job.remaining_batches == 6.0
    assert job.finish_time(now=1.0) == pytest.approx(4.0)
    job.rate = 0.0
    assert job.finish_time(now=1.0) == float("inf")


def test_queue_wait_and_resize_flags():
    job = Job(spec=make_spec())
    assert math.isnan(job.queue_wait)
    assert not job.was_resized and not job.was_preempted
    job.waits.append(1.5)
    job.trajectory.extend([(0.0, "admit", 2), (1.0, "grow", 3)])
    assert job.queue_wait == 1.5
    assert job.was_resized
    job.preemptions = 1
    assert job.was_preempted


def test_n_label_dedups_and_skips_preempts():
    job = Job(spec=make_spec())
    assert job.n_label() == "-"
    job.trajectory = [
        (0.0, "admit", 2),
        (1.0, "grow", 3),
        (2.0, "preempt", 3),
        (3.0, "resume", 3),
        (4.0, "shrink", 1),
    ]
    assert job.n_label() == "2→3→1"
