"""Elastic-averaging framework (§3.2) invariants."""

import numpy as np
import pytest

from repro.core import ElasticAveragingFramework, MessageQueue
from repro.models import BertConfig, build_bert
from repro.optim import SGD, Adam

CFG = BertConfig(vocab_size=16, d_model=8, num_heads=2, num_blocks=2, d_ff=16,
                 seq_len=9, num_classes=3, dropout=0.0)


def make_models(n, seed=0):
    models = [build_bert(CFG).seed(seed) for _ in range(n)]
    base = models[0].state_dict()
    for m in models[1:]:
        m.load_state_dict(base)
    return models


def batch(seed=0):
    rng = np.random.default_rng(seed)
    return {"tokens": rng.integers(4, 16, size=(4, 9)), "labels": rng.integers(0, 3, size=4)}


class TestMessageQueue:
    def test_sync_queue_visible_same_tick(self):
        q = MessageQueue(delay=0)
        q.put("a")
        assert q.drain() == ["a"]

    def test_delayed_visibility(self):
        q = MessageQueue(delay=2)
        q.put("a")
        assert q.drain() == []
        q.tick()
        assert q.drain() == []
        q.tick()
        assert q.drain() == ["a"]

    def test_fifo_order(self):
        q = MessageQueue(delay=0)
        q.put(1), q.put(2), q.put(3)
        assert q.drain() == [1, 2, 3]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            MessageQueue(delay=-1)


class TestFrameworkInvariants:
    def test_alpha_defaults_to_one_over_n(self):
        fw = ElasticAveragingFramework(make_models(4))
        assert fw.alpha == pytest.approx(0.25)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ElasticAveragingFramework(make_models(2), alpha=1.5)

    def test_structure_mismatch_rejected(self):
        other = build_bert(BertConfig(vocab_size=16, d_model=8, num_heads=2, num_blocks=3,
                                      d_ff=16, seq_len=9, num_classes=3))
        with pytest.raises(ValueError):
            ElasticAveragingFramework(make_models(1) + [other])

    def test_reference_starts_at_common_init(self):
        models = make_models(3)
        fw = ElasticAveragingFramework(models)
        for name, p in models[0].named_parameters():
            assert np.allclose(fw.reference[name], p.data, atol=1e-6)

    def test_reference_tracks_average_under_sync_queue(self):
        """The reference stays a *bounded-lag* tracker of the parallel-model
        average (Figure 5(b)): after the update order
        x_i <- (1-a)(x_i + d_i) + a*ref, ref <- ref + mean(d), the gap
        between ref and the average is O(a * |mean step|) and must not
        grow across iterations."""
        models = make_models(2, seed=3)
        fw = ElasticAveragingFramework(models, queue_delay=0, update_normalization="mean")
        opts = [SGD(m.parameters(), lr=0.05) for m in models]
        gaps = []
        for it in range(6):
            step_norms = []
            for i, (m, o) in enumerate(zip(models, opts)):
                before = fw.capture(i)
                m.zero_grad()
                m.loss(batch(seed=10 * it + i)).backward()
                o.step()
                after = m.state_dict()
                step_norms.append(
                    max(np.abs(after[k] - before[k]).max() for k in before)
                )
                fw.commit(i, before)
            assert fw.end_iteration()
            avg: dict[str, list] = {}
            for m in models:
                for name, p in m.named_parameters():
                    avg.setdefault(name, []).append(p.data)
            gap = max(
                np.abs(fw.reference[name] - np.mean(vals, axis=0)).max()
                for name, vals in avg.items()
            )
            # Gap bounded by the iteration's own step size (alpha = 1/2).
            assert gap <= max(step_norms) + 1e-6
            gaps.append(gap)
        # Tracking, not drifting: the gap must not blow up over time.
        assert gaps[-1] < 10 * (gaps[0] + 1e-6)

    def test_elastic_pull_reduces_divergence(self):
        models = make_models(2, seed=1)
        fw = ElasticAveragingFramework(models, queue_delay=0)
        # Artificially separate the models.
        for p in models[0].parameters():
            p.data = p.data + 0.5
        for p in models[1].parameters():
            p.data = p.data - 0.5
        div0 = fw.divergence()
        for i in range(2):
            before = fw.capture(i)
            fw.commit(i, before)  # no optimizer step: pure elastic pull
        fw.end_iteration()
        assert fw.divergence() < div0

    def test_commit_posts_delta_to_queue(self):
        models = make_models(1)
        fw = ElasticAveragingFramework(models, queue_delay=1)
        before = fw.capture(0)
        for p in models[0].parameters():
            p.data = p.data + 1.0
        fw.commit(0, before)
        assert len(fw.queue) == 1

    def test_reference_waits_for_all_n(self):
        models = make_models(3)
        fw = ElasticAveragingFramework(models, queue_delay=0)
        ref_before = {k: v.copy() for k, v in fw.reference.items()}
        fw.commit(0, fw.capture(0))
        fw.commit(1, fw.capture(1))
        assert not fw.reference_step()  # only 2 of 3 arrived
        for k in ref_before:
            assert np.array_equal(fw.reference[k], ref_before[k])
        fw.commit(2, fw.capture(2))
        assert fw.reference_step()

    def test_async_queue_delays_reference_update(self):
        models = make_models(1)
        fw = ElasticAveragingFramework(models, queue_delay=2)
        before = fw.capture(0)
        for p in models[0].parameters():
            p.data = p.data + 1.0
        fw.commit(0, before)
        assert not fw.end_iteration()  # delta not yet visible
        assert fw.end_iteration()  # visible after second tick

    def test_optimizer_agnostic(self):
        """The framework's point (§3.1): it must work unchanged with Adam."""
        models = make_models(2, seed=5)
        fw = ElasticAveragingFramework(models)
        opts = [Adam(m.parameters(), lr=1e-3) for m in models]
        for i, (m, o) in enumerate(zip(models, opts)):
            before = fw.capture(i)
            m.zero_grad()
            m.loss(batch(seed=i)).backward()
            o.step()
            fw.commit(i, before)
        fw.end_iteration()
        assert all(np.all(np.isfinite(v)) for v in fw.reference.values())

    def test_sum_normalization_advances_reference_n_times_faster(self):
        """With "sum" normalization (the default; see DESIGN.md item 2)
        the reference integrates every pipeline's update at full
        strength, i.e. N times the "mean" reading's step."""
        import copy

        def ref_step_norm(norm):
            models = make_models(2, seed=7)
            fw = ElasticAveragingFramework(models, queue_delay=0, update_normalization=norm)
            before = {k: v.copy() for k, v in fw.reference.items()}
            for i, m in enumerate(models):
                snap = fw.capture(i)
                for p in m.parameters():
                    p.data = p.data + 0.01
                fw.commit(i, snap)
            fw.end_iteration()
            return {k: fw.reference[k] - before[k] for k in before}

        step_sum = ref_step_norm("sum")
        step_mean = ref_step_norm("mean")
        for k in step_sum:
            assert np.allclose(step_sum[k], 2 * step_mean[k], atol=1e-6)

    def test_invalid_normalization_rejected(self):
        with pytest.raises(ValueError):
            ElasticAveragingFramework(make_models(1), update_normalization="median")

    def test_reference_model_export(self):
        models = make_models(2)
        fw = ElasticAveragingFramework(models)
        template = build_bert(CFG)
        fw.reference_model(template)
        for name, p in template.named_parameters():
            assert np.allclose(p.data, fw.reference[name])
