"""Gradcheck + semantics for every functional primitive."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    cat,
    cross_entropy,
    dropout,
    embedding_lookup,
    gelu,
    gradcheck,
    layer_norm,
    log_softmax,
    nll_loss,
    relu,
    sigmoid,
    softmax,
    stack,
    tanh,
    tensor,
    where,
)


def _rand(*shape, seed=0):
    rng = np.random.default_rng(seed)
    return tensor(rng.standard_normal(shape), requires_grad=True, dtype=np.float64)


class TestActivationGradients:
    def test_relu(self):
        assert gradcheck(relu, [_rand(4, 5, seed=1)])

    def test_gelu(self):
        assert gradcheck(gelu, [_rand(4, 5, seed=2)])

    def test_tanh(self):
        assert gradcheck(tanh, [_rand(4, 5, seed=3)])

    def test_sigmoid(self):
        assert gradcheck(sigmoid, [_rand(4, 5, seed=4)])

    def test_sigmoid_extreme_values_stable(self):
        x = tensor([-100.0, 0.0, 100.0])
        out = sigmoid(x)
        assert np.all(np.isfinite(out.data))
        assert out.data[0] == pytest.approx(0.0, abs=1e-6)
        assert out.data[2] == pytest.approx(1.0, abs=1e-6)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        out = softmax(_rand(6, 7, seed=5))
        assert np.allclose(out.data.sum(axis=-1), 1.0, atol=1e-6)

    def test_softmax_gradcheck(self):
        assert gradcheck(lambda x: softmax(x, axis=-1), [_rand(3, 4, seed=6)])

    def test_softmax_other_axis(self):
        assert gradcheck(lambda x: softmax(x, axis=0), [_rand(3, 4, seed=7)])

    def test_log_softmax_matches_log_of_softmax(self):
        x = _rand(5, 8, seed=8)
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data), atol=1e-6)

    def test_log_softmax_gradcheck(self):
        assert gradcheck(lambda x: log_softmax(x), [_rand(3, 4, seed=9)])

    def test_softmax_shift_invariance(self):
        x = _rand(2, 5, seed=10)
        shifted = Tensor(x.data + 1000.0)
        assert np.allclose(softmax(x).data, softmax(shifted).data, atol=1e-6)
        assert np.all(np.isfinite(softmax(shifted).data))


class TestLayerNorm:
    def test_output_standardized(self):
        x = _rand(4, 16, seed=11)
        w = tensor(np.ones(16), dtype=np.float64, requires_grad=True)
        b = tensor(np.zeros(16), dtype=np.float64, requires_grad=True)
        out = layer_norm(x, w, b)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck_all_inputs(self):
        x = _rand(3, 8, seed=12)
        w = tensor(np.random.default_rng(1).standard_normal(8), dtype=np.float64, requires_grad=True)
        b = tensor(np.random.default_rng(2).standard_normal(8), dtype=np.float64, requires_grad=True)
        assert gradcheck(lambda a, ww, bb: layer_norm(a, ww, bb), [x, w, b])


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = _rand(10, 10, seed=13)
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_zero_p_is_identity(self):
        x = _rand(4, seed=14)
        assert dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_inverted_scaling_preserves_mean(self):
        x = tensor(np.ones((200, 200)), requires_grad=False)
        out = dropout(x, 0.3, np.random.default_rng(7))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_gradient_matches_mask(self):
        x = _rand(50, seed=15)
        out = dropout(x, 0.5, np.random.default_rng(3))
        out.sum().backward()
        # grad is 2.0 where kept, 0 where dropped
        kept = out.data != 0
        assert np.allclose(x.grad[kept], 2.0)
        assert np.allclose(x.grad[~kept], 0.0)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            dropout(_rand(2), 1.0, np.random.default_rng(0))


class TestEmbedding:
    def test_lookup_values(self):
        w = tensor(np.arange(12, dtype=np.float64).reshape(4, 3), requires_grad=True)
        out = embedding_lookup(w, np.array([[0, 2], [3, 3]]))
        assert out.shape == (2, 2, 3)
        assert np.allclose(out.data[0, 1], [6, 7, 8])

    def test_scatter_add_backward(self):
        w = tensor(np.zeros((4, 2)), dtype=np.float64, requires_grad=True)
        embedding_lookup(w, np.array([1, 1, 2])).sum().backward()
        assert np.allclose(w.grad[:, 0], [0, 2, 1, 0])

    def test_float_indices_rejected(self):
        w = tensor(np.zeros((4, 2)), requires_grad=True)
        with pytest.raises(TypeError):
            embedding_lookup(w, np.array([0.5]))


class TestLosses:
    def test_cross_entropy_uniform_logits(self):
        logits = tensor(np.zeros((3, 5)), dtype=np.float64, requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(np.log(5), abs=1e-6)

    def test_cross_entropy_gradcheck(self):
        x = _rand(6, 4, seed=16)
        targets = np.array([0, 1, 2, 3, 0, 1])
        assert gradcheck(lambda a: cross_entropy(a, targets), [x])

    def test_ignore_index_masks_loss_and_grad(self):
        x = _rand(4, 3, seed=17)
        targets = np.array([0, 1, 0, 0])
        # Mark rows 2,3 as padding.
        masked = np.array([0, 1, 9, 9])
        loss_masked = cross_entropy(x, masked, ignore_index=9)
        x2 = tensor(x.data[:2].copy(), requires_grad=True, dtype=np.float64)
        loss_sub = cross_entropy(x2, targets[:2])
        assert loss_masked.item() == pytest.approx(loss_sub.item(), abs=1e-6)
        loss_masked.backward()
        assert np.allclose(x.grad[2:], 0.0)

    def test_all_ignored_gives_zero_not_nan(self):
        x = _rand(2, 3, seed=18)
        loss = cross_entropy(x, np.array([7, 7]), ignore_index=7)
        assert loss.item() == pytest.approx(0.0)

    def test_nll_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            nll_loss(_rand(2, 3, 4, seed=19), np.array([0, 1]))
        with pytest.raises(ValueError):
            nll_loss(_rand(2, 3, seed=20), np.array([0, 1, 2]))


class TestShapeCombinators:
    def test_cat_backward_splits(self):
        a = _rand(2, 3, seed=21)
        b = _rand(4, 3, seed=22)
        cat([a, b], axis=0).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (4, 3)

    def test_cat_gradcheck(self):
        a, b = _rand(2, 3, seed=23), _rand(2, 2, seed=24)
        assert gradcheck(lambda x, y: cat([x, y], axis=1), [a, b])

    def test_stack_gradcheck(self):
        a, b = _rand(3, seed=25), _rand(3, seed=26)
        assert gradcheck(lambda x, y: stack([x, y], axis=0), [a, b])

    def test_empty_cat_raises(self):
        with pytest.raises(ValueError):
            cat([])

    def test_where_routes_gradients(self):
        cond = np.array([True, False, True])
        a = _rand(3, seed=27)
        b = _rand(3, seed=28)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1, 0, 1])
        assert np.allclose(b.grad, [0, 1, 0])
