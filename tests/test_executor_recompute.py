"""Activation recomputation (GPipe re-materialization) in the executor."""

import pytest

from repro.schedules import AFABSchedule, OneFOneBSchedule, PipelineSimRunner, StageCosts
from repro.sim import ClusterSpec, Simulator, make_cluster

GIB = 2**30


def run(recompute, schedule=None, memory=8 * GIB, k=6):
    sim = Simulator()
    cluster = make_cluster(
        sim, k, spec=ClusterSpec(nodes=k // 2, gpus_per_node=2, memory_bytes=memory)
    )
    costs = StageCosts(
        fwd_flops=(4.0e6,) * k,
        act_out_bytes=(2.0e6,) * k,
        stash_bytes=(12.0e6,) * k,  # internals 6x the boundary tensor
        param_bytes=(1_000_000,) * k,
    )
    runner = PipelineSimRunner(
        cluster, schedule or AFABSchedule(), costs, num_micro=8, mb_size=8.0,
        activation_recompute=recompute,
    )
    return runner.run(iterations=2)


class TestRecompute:
    def test_cuts_activation_memory(self):
        full = run(False)
        saved = run(True)
        assert max(saved.data_memory_peak) < 0.4 * max(full.data_memory_peak)

    def test_costs_extra_compute_time(self):
        full = run(False)
        saved = run(True)
        assert saved.batch_time > full.batch_time
        # Extra cost is one forward per backward: at most ~1/3 more compute.
        assert saved.batch_time < full.batch_time * 1.6

    def test_gpu_time_reflects_rematerialization(self):
        full = run(False)
        saved = run(True)
        for d_full, d_saved in zip(full.decomposition, saved.decomposition):
            assert d_saved["gpu"] > d_full["gpu"]

    def test_rescues_a_config_from_oom(self):
        """The canonical use: a batch whose AFAB stash OOMs fits with
        recomputation enabled."""
        tight = 90 * 2**20  # AFAB stash alone is 8 x 12 MB per stage
        without = run(False, memory=tight)
        with_rc = run(True, memory=tight)
        assert without.oom is not None
        assert with_rc.oom is None

    def test_works_with_1f1b(self):
        res = run(True, schedule=OneFOneBSchedule(versions=1))
        assert res.oom is None
        assert res.batch_time > 0
