"""Schedule sanitizer: clean schedules lint clean, corruptions are caught,
and the analytic memory model brackets (and, on straight chains, equals)
the executor's actual peak ledger."""

import pytest

from repro.schedules import (
    AFABSchedule,
    AdvanceFPSchedule,
    OneFOneBSchedule,
    PipeDreamSchedule,
    PipelineSimRunner,
    StageCosts,
)
from repro.sim import ClusterSpec, Simulator, make_cluster
from repro.verify import (
    CorruptedSchedule,
    ScheduleViolation,
    assert_schedule_valid,
    check_deadlock_free,
    check_schedule,
    check_stream,
    corrupt_schedule,
    predict_peak_memory,
)
from repro.verify.oracle import VERIFIED_SCHEDULES

GRID = [(1, 1), (1, 4), (2, 2), (2, 8), (3, 5), (4, 4), (4, 8), (5, 12)]


@pytest.mark.parametrize("name", sorted(VERIFIED_SCHEDULES))
@pytest.mark.parametrize("num_stages,num_micro", GRID)
def test_registered_schedules_lint_clean(name, num_stages, num_micro):
    schedule = VERIFIED_SCHEDULES[name]()
    assert check_schedule(schedule, num_stages, num_micro) == []


@pytest.mark.parametrize("mode", CorruptedSchedule.MODES)
@pytest.mark.parametrize("base", [AFABSchedule(), OneFOneBSchedule(1), AdvanceFPSchedule(1)])
def test_corruptions_are_caught(mode, base):
    violations = check_schedule(corrupt_schedule(base, mode), 3, 4)
    assert violations, f"{mode} on {base.name} went undetected"
    rules = {v.rule for v in violations}
    expected = {
        "swapped-bwd": "bwd-monotone",
        "dropped-bwd": "bwd-exactly-once",
        "dup-fwd": "fwd-exactly-once",
        "cross-deadlock": "deadlock",
    }[mode]
    assert expected in rules, f"{mode}: expected {expected} in {rules}"


def test_assert_schedule_valid_raises_with_findings():
    with pytest.raises(ScheduleViolation) as exc:
        assert_schedule_valid(corrupt_schedule(AFABSchedule(), "swapped-bwd"), 2, 4)
    assert exc.value.violations
    assert "bwd-monotone" in str(exc.value)


def test_check_stream_flags_b_before_f():
    from repro.schedules.base import StageOp

    ops = [StageOp("bwd", 0), StageOp("fwd", 0)]
    rules = {v.rule for v in check_stream(ops, 1)}
    assert "b-before-f" in rules


def test_check_stream_flags_micro_out_of_range():
    from repro.schedules.base import StageOp

    ops = [StageOp("fwd", 5), StageOp("bwd", 5)]
    rules = {v.rule for v in check_stream(ops, 2)}
    assert "micro-range" in rules


def test_deadlock_free_on_clean_streams():
    schedule = OneFOneBSchedule(1)
    streams = [schedule.stage_ops(k, 4, 6) for k in range(4)]
    assert check_deadlock_free(streams, 6) == []


def test_stash_bound_advertised_matches_peak():
    # AFAB stashes all M; 1F1B stage k peaks at K - k.
    afab, ofob = AFABSchedule(), OneFOneBSchedule(1)
    assert afab.stash_bound(0, 4, 8) == 8
    for k in range(4):
        assert ofob.stash_bound(k, 4, 8) == 4 - k


# ---------------------------------------------------------------------- #
# memory model vs the executor's ledger


def _costs(k):
    return StageCosts(
        fwd_flops=(2.0e6,) * k,
        act_out_bytes=(3.0e6,) * k,
        stash_bytes=(7.0e6,) * k,
        param_bytes=(1_000_000,) * k,
    )


@pytest.mark.parametrize("schedule", [AFABSchedule(), OneFOneBSchedule(2), AdvanceFPSchedule(1), PipeDreamSchedule()])
@pytest.mark.parametrize("recompute", [False, True])
def test_memory_model_exact_on_straight_chain(schedule, recompute):
    K, M = 3, 4
    costs = _costs(K)
    device_map = [list(range(K))]
    prediction = predict_peak_memory(
        schedule, costs, M, K, device_map, activation_recompute=recompute
    )
    assert prediction.lower == prediction.upper  # one stage per device: exact

    sim = Simulator()
    cluster = make_cluster(
        sim, K, spec=ClusterSpec(nodes=K, gpus_per_node=1, memory_bytes=2**31)
    )
    runner = PipelineSimRunner(
        cluster, schedule, costs, num_micro=M, mb_size=4.0,
        activation_recompute=recompute,
    )
    result = runner.run(iterations=1)
    assert result.oom is None
    assert tuple(result.peak_memory) == prediction.lower


def test_memory_model_oom_decision():
    K, M = 2, 4
    costs = _costs(K)
    prediction = predict_peak_memory(AFABSchedule(), costs, M, K, [list(range(K))])
    tight = max(prediction.lower)
    assert prediction.must_fit(tight)
    assert not prediction.must_oom(tight)
    assert prediction.must_oom(tight - 1)


def test_reference_model_memory_charged_to_pipeline_zero():
    K, M = 2, 4
    costs = _costs(K)
    base = predict_peak_memory(AFABSchedule(), costs, M, K, [list(range(K))])
    with_ref = predict_peak_memory(
        AFABSchedule(), costs, M, K, [list(range(K))], with_reference_model=True
    )
    assert [hi - lo for hi, lo in zip(with_ref.upper, base.upper)] == list(costs.param_bytes)
