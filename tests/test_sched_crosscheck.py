"""Numerics cross-check: scheduler N-trajectories replayed on a real
trainer and verified against the elastic oracle."""

import pytest

from repro.sched import Job, JobSpec, crosscheck_job, crosscheck_result, run_scenario


def trajectory_job(trajectory):
    job = Job(
        spec=JobSpec(
            job_id="jt",
            family="awd",
            num_stages=2,
            num_micro=4,
            total_batches=8,
            pipelines=2,
            min_pipelines=1,
            max_pipelines=3,
        )
    )
    job.trajectory = trajectory
    return job


def test_resize_trajectory_is_clean():
    job = trajectory_job([
        (0.0, "admit", 2),
        (1.0, "grow", 3),
        (2.0, "shrink", 1),
    ])
    result = crosscheck_job(job, seed=0)
    assert result.events == 2
    assert result.ok
    assert result.divergence <= result.tolerance


def test_preempt_resume_trajectory_is_clean():
    """The full preemption round-trip: checkpoint (format v2), restore
    into a fresh trainer, grow back to the resumed N."""
    job = trajectory_job([
        (0.0, "admit", 2),
        (1.0, "preempt", 2),
        (2.0, "resume", 3),
        (3.0, "shrink", 2),
    ])
    result = crosscheck_job(job, seed=0)
    assert result.events == 3
    assert result.ok


def test_resume_below_checkpoint_n_shrinks_the_replay(monkeypatch):
    """REVIEW regression: a job preempted at N=3 but re-admitted at N=2
    must shrink the restored trainer — the replay used to only grow,
    silently staying at the checkpoint's wider N."""
    from repro.core.trainer import AvgPipeTrainer

    evictions = []
    original = AvgPipeTrainer.evict_pipeline

    def recording_evict(self, pos):
        evictions.append(pos)
        return original(self, pos)

    monkeypatch.setattr(AvgPipeTrainer, "evict_pipeline", recording_evict)
    job = trajectory_job([
        (0.0, "admit", 3),
        (1.0, "preempt", 3),
        (2.0, "resume", 2),
    ])
    result = crosscheck_job(job, seed=0)
    assert result.events == 2
    assert result.ok
    assert evictions, "shrink-on-resume never fired"


def test_trajectory_must_start_with_admit():
    job = trajectory_job([(0.0, "grow", 2)])
    with pytest.raises(ValueError, match="starts with 'grow'"):
        crosscheck_job(job, seed=0)


def test_trajectory_must_not_end_preempted():
    job = trajectory_job([(0.0, "admit", 2), (1.0, "preempt", 2)])
    with pytest.raises(ValueError, match="ends preempted"):
        crosscheck_job(job, seed=0)


def test_empty_trajectory_raises():
    job = trajectory_job([])
    with pytest.raises(ValueError, match="no trajectory"):
        crosscheck_job(job, seed=0)


@pytest.mark.parametrize("policy", ["fair", "priority"])
def test_scenario_crosschecks_are_clean(policy):
    """ISSUE 9 acceptance: every preempted-then-resumed or resized job in
    the canned scenario cross-checks clean against the elastic oracle."""
    result = run_scenario("smoke", policy, seed=0)
    checks = crosscheck_result(result, seed=0)
    assert checks, f"{policy} on smoke must resize or preempt at least one job"
    for check in checks:
        assert check.ok, f"{check.job_id} diverged by {check.divergence}"
    # only jobs with an eventful trajectory were replayed
    eventful = {j.job_id for j in result.jobs if j.was_resized or j.was_preempted}
    assert {c.job_id for c in checks} == eventful
