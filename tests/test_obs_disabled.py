"""Negative path: observability off must mean *nothing* changes.

Three layers of the contract:

* a disabled registry hands out the shared no-op instrument and creates
  zero series, no matter how hard call sites hammer it;
* the sim executor produces identical measurements with and without a
  registry attached (and with the NULL registry);
* the numeric trainer's loss trajectory and final weights are bitwise
  identical with telemetry hooks installed vs absent.
"""

import numpy as np

from repro.obs import NULL_REGISTRY, MetricRegistry, TrainingTelemetry
from repro.schedules.base import AFABSchedule
from repro.schedules.executor import PipelineSimRunner, StageCosts
from repro.sim.cluster import ClusterSpec, make_cluster
from repro.sim.events import Simulator


def test_disabled_registry_creates_no_series():
    reg = MetricRegistry(enabled=False)
    for i in range(100):
        reg.counter("a", device=i).inc(1.0)
        reg.gauge("b", device=i).set(float(i))
        reg.histogram("c", device=i).observe(float(i))
    assert len(reg) == 0
    assert list(reg.series()) == []
    assert reg.snapshot() == {}
    assert reg.get("a", device=0) is None
    assert reg.value("a", device=0, default=-1.0) == -1.0


def test_disabled_registry_hands_out_shared_null_instrument():
    reg = MetricRegistry(enabled=False)
    null = reg.counter("x")
    assert null is reg.gauge("y") is reg.histogram("z")
    assert null is NULL_REGISTRY.counter("anything", label=1)
    null.inc(); null.set(5.0); null.observe(2.0)  # all no-ops
    assert null.value == 0.0


def _run_sim(registry):
    K, M = 2, 4
    costs = StageCosts(
        fwd_flops=(4.0e6,) * K,
        act_out_bytes=(4.0e6,) * K,
        stash_bytes=(8.0e6,) * K,
        param_bytes=(1_000_000,) * K,
    )
    sim = Simulator()
    cluster = make_cluster(
        sim, K, spec=ClusterSpec(nodes=2, gpus_per_node=1, memory_bytes=2**31)
    )
    runner = PipelineSimRunner(
        cluster, AFABSchedule(), costs, num_micro=M, mb_size=8.0, registry=registry
    )
    return runner.run(iterations=2)


def test_executor_results_identical_with_and_without_registry():
    bare = _run_sim(None)
    instrumented = _run_sim(MetricRegistry())
    nulled = _run_sim(NULL_REGISTRY)
    for other in (instrumented, nulled):
        assert other.batch_time == bare.batch_time
        assert other.total_time == bare.total_time
        assert other.decomposition == bare.decomposition
        assert other.peak_memory == bare.peak_memory
    assert len(NULL_REGISTRY) == 0  # the shared null registry stayed empty


def test_default_runner_records_no_metrics():
    result = _run_sim(None)
    assert result.trace.registry is None
    assert result.oom is None


def test_trainer_trajectory_bitwise_identical_with_telemetry():
    from repro.core.trainer import AvgPipeTrainer
    from repro.resilience.chaos import tiny_chaos_spec

    def run(telemetry):
        trainer = AvgPipeTrainer(
            tiny_chaos_spec(), seed=3, num_pipelines=2, max_epochs=2,
            telemetry=telemetry,
        )
        result = trainer.train()
        return result, trainer

    registry = MetricRegistry()
    bare_result, bare_trainer = run(None)
    obs_result, obs_trainer = run(TrainingTelemetry(registry))

    # Telemetry must observe, never steer: bitwise-equal trajectories.
    assert obs_result.metric_history == bare_result.metric_history
    assert obs_result.epochs_run == bare_result.epochs_run
    for bare_model, obs_model in zip(bare_trainer.models, obs_trainer.models):
        for name, param in bare_model.named_parameters():
            other = dict(obs_model.named_parameters())[name]
            assert np.array_equal(param.data, other.data), name
    for name, ref in bare_trainer.framework.reference.items():
        assert np.array_equal(ref, obs_trainer.framework.reference[name]), name

    # ... and it did observe: losses, rounds, divergence, elastic pulls.
    assert registry.value("train.rounds") > 0
    assert registry.value("elastic.reference_updates") > 0
    assert registry.get("train.loss", pipeline=0) is not None
    assert registry.get("elastic.pull_rms", model=0) is not None


def test_disabled_telemetry_records_nothing_through_the_trainer():
    from repro.core.trainer import AvgPipeTrainer
    from repro.resilience.chaos import tiny_chaos_spec

    reg = MetricRegistry(enabled=False)
    trainer = AvgPipeTrainer(
        tiny_chaos_spec(), seed=3, num_pipelines=2, max_epochs=1,
        telemetry=TrainingTelemetry(reg),
    )
    trainer.train()
    assert len(reg) == 0
