"""Device (utilization curve), Link (latency + sharing), Cluster topology,
and trace aggregation."""

import numpy as np
import pytest

from repro.sim import (
    Cluster,
    ClusterSpec,
    Device,
    Link,
    Simulator,
    SpanKind,
    TraceRecorder,
    UtilizationCurve,
    make_cluster,
)


class TestUtilizationCurve:
    def test_monotone_in_micro_batch_size(self):
        curve = UtilizationCurve()
        demands = [curve.demand(b) for b in (1, 2, 8, 32, 128)]
        assert demands == sorted(demands)

    def test_bounds(self):
        curve = UtilizationCurve(u_max=0.9, u_floor=0.1, b_half=10)
        assert curve.demand(0.001) >= 0.1
        assert curve.demand(1e9) <= 0.9

    def test_half_saturation_point(self):
        curve = UtilizationCurve(u_max=1.0, u_floor=0.0, b_half=16)
        assert curve.demand(16) == pytest.approx(0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UtilizationCurve(u_max=0.5, u_floor=0.6, b_half=1)
        with pytest.raises(ValueError):
            UtilizationCurve(b_half=0)

    def test_nonpositive_batch_rejected(self):
        with pytest.raises(ValueError):
            UtilizationCurve().demand(0)


class TestDevice:
    def test_kernel_duration_scales_with_demand(self):
        sim = Simulator()
        dev = Device(sim, 0, 0, peak_flops=100.0, memory_bytes=2**20,
                     curve=UtilizationCurve(u_max=1.0, u_floor=0.0, b_half=8))
        done_times = {}

        def proc(name, mb):
            yield dev.run_kernel(100.0, mb, name=name)
            done_times[name] = sim.now

        sim.process(proc("big", 8.0))  # demand 0.5 -> rate 50 -> 2s
        sim.run()
        assert done_times["big"] == pytest.approx(2.0)

    def test_two_small_kernels_coexist(self):
        sim = Simulator()
        dev = Device(sim, 0, 0, peak_flops=100.0, memory_bytes=2**20,
                     curve=UtilizationCurve(u_max=1.0, u_floor=0.0, b_half=8))
        ends = []

        def proc(mb):
            yield dev.run_kernel(100.0, mb)
            ends.append(sim.now)

        sim.process(proc(8.0))
        sim.process(proc(8.0))
        sim.run()
        # Both at demand 0.5 -> total 1.0 -> no slowdown.
        assert all(t == pytest.approx(2.0) for t in ends)


class TestLink:
    def test_latency_plus_serialization(self):
        sim = Simulator()
        link = Link(sim, 0, 1, bandwidth_bytes_per_sec=100.0, latency_sec=0.5)
        t_done = []

        def proc():
            yield link.transfer(200.0)
            t_done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert t_done[0] == pytest.approx(0.5 + 2.0)

    def test_concurrent_transfers_share_bandwidth(self):
        sim = Simulator()
        link = Link(sim, 0, 1, bandwidth_bytes_per_sec=100.0, latency_sec=0.0)
        ends = []

        def proc():
            yield link.transfer(100.0)
            ends.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert all(t == pytest.approx(2.0) for t in ends)

    def test_transfer_time_alone(self):
        sim = Simulator()
        link = Link(sim, 0, 1, bandwidth_bytes_per_sec=50.0, latency_sec=0.1)
        assert link.transfer_time_alone(100.0) == pytest.approx(2.1)

    def test_invalid_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 0, 1, bandwidth_bytes_per_sec=0)
        with pytest.raises(ValueError):
            Link(sim, 0, 1, bandwidth_bytes_per_sec=1, latency_sec=-1)


class TestCluster:
    def test_paper_topology(self):
        sim = Simulator()
        cluster = make_cluster(sim, 6)
        assert cluster.num_devices == 6
        assert cluster.devices[0].node == 0
        assert cluster.devices[1].node == 0
        assert cluster.devices[2].node == 1

    def test_intra_vs_inter_node_links(self):
        sim = Simulator()
        cluster = make_cluster(sim, 6)
        fast = cluster.link(0, 1)
        slow = cluster.link(1, 2)
        assert fast.bandwidth > slow.bandwidth * 10
        assert cluster.is_cross_node(1, 2)
        assert not cluster.is_cross_node(0, 1)

    def test_links_cached(self):
        sim = Simulator()
        cluster = make_cluster(sim, 4)
        assert cluster.link(0, 1) is cluster.link(0, 1)
        assert cluster.link(0, 1) is not cluster.link(1, 0)

    def test_self_link_rejected(self):
        sim = Simulator()
        cluster = make_cluster(sim, 4)
        with pytest.raises(ValueError):
            cluster.link(2, 2)

    def test_spec_device_count_mismatch(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_cluster(sim, 8, spec=ClusterSpec(nodes=3, gpus_per_node=2))


class TestTraceRecorder:
    def test_time_decomposition(self):
        trace = TraceRecorder()
        trace.record(0, 0.0, 1.0, SpanKind.FWD, "1")
        trace.record(0, 1.0, 3.0, SpanKind.BWD, "1")
        trace.record(0, 3.0, 3.5, SpanKind.COMM)
        trace.record(0, 3.5, 4.0, SpanKind.BUBBLE)
        trace.record(1, 0.0, 9.0, SpanKind.FWD, "1")
        d = trace.time_decomposition(0)
        assert d == {"gpu": 3.0, "com": 0.5, "bub": 0.5, "sync": 0.0}
        assert trace.idle_time(0) == pytest.approx(1.0)

    def test_invalid_span_rejected(self):
        trace = TraceRecorder()
        with pytest.raises(ValueError):
            trace.record(0, 2.0, 1.0, SpanKind.FWD)

    def test_zero_length_span_ignored(self):
        trace = TraceRecorder()
        trace.record(0, 1.0, 1.0, SpanKind.FWD)
        assert trace.spans == []

    def test_average_utilization(self):
        sim = Simulator()
        cluster = make_cluster(sim, 2, spec=ClusterSpec(nodes=1, gpus_per_node=2))

        def proc():
            yield cluster.devices[0].compute.execute(
                cluster.spec.peak_flops * 2.0, demand=1.0
            )

        sim.process(proc())
        sim.run()
        # Device 0 busy at 100% for 2s, device 1 idle -> average 0.5.
        avg = TraceRecorder.average_utilization(cluster, sim.now)
        assert avg == pytest.approx(0.5)

    def test_utilization_curve_sampling(self):
        sim = Simulator()
        cluster = make_cluster(sim, 2, spec=ClusterSpec(nodes=1, gpus_per_node=2))

        def proc():
            yield cluster.devices[0].compute.execute(cluster.spec.peak_flops, demand=1.0)

        sim.process(proc())
        sim.run()
        samples = TraceRecorder.utilization_curve(cluster, 0, horizon=2.0, samples=10)
        assert samples[:5] == pytest.approx([1.0] * 5)
        assert samples[5:] == pytest.approx([0.0] * 5)

    def test_render_produces_rows_per_device(self):
        trace = TraceRecorder()
        trace.record(0, 0.0, 1.0, SpanKind.FWD, "1")
        trace.record(1, 1.0, 2.0, SpanKind.BWD, "1")
        art = trace.render(2, width=20)
        assert art.count("\n") >= 2
        assert "GPU 1" in art and "GPU 2" in art
