"""Property-based tests on the elastic-averaging framework.

Random update sequences; the invariants:

* the dilution is a contraction — after commit, each model is strictly
  closer to the (pre-commit) reference than its post-optimizer position;
* the reference is translation-equivariant — shifting every model and
  the updates by a constant shifts the whole trajectory by it;
* "sum" normalization advances the reference exactly N times "mean";
* divergence stays bounded under bounded updates (no drift blow-up).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ElasticAveragingFramework
from repro.models.pipeline_model import ActivationBundle, PipelineLayer, PipelineModel
from repro.nn import Linear


class _Probe(PipelineLayer):
    """Minimal one-layer pipeline model for framework math tests."""

    def __init__(self, dim: int = 4) -> None:
        super().__init__()
        self.fc = Linear(dim, dim, bias=False)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        return bundle

    def flops_per_sample(self) -> float:
        return 1.0

    def activation_floats_per_sample(self) -> float:
        return 1.0


def make_framework(n, alpha=None, seed=0, **kwargs):
    models = [PipelineModel(layers=[_Probe()], name="probe") for _ in range(n)]
    base = models[0].state_dict()
    for m in models[1:]:
        m.load_state_dict(base)
    return ElasticAveragingFramework(models, alpha=alpha, queue_delay=0, **kwargs), models


def apply_updates(framework, models, updates):
    for i, (model, upd) in enumerate(zip(models, updates)):
        before = framework.capture(i)
        for _, p in model.named_parameters():
            p.data = p.data + upd.astype(np.float32)
        framework.commit(i, before)
    framework.end_iteration()


updates_strategy = st.lists(
    st.floats(-1.0, 1.0).filter(lambda x: abs(x) > 1e-3), min_size=2, max_size=4
)


@settings(max_examples=30, deadline=None)
@given(updates=updates_strategy, alpha=st.floats(0.05, 0.95))
def test_dilution_is_a_contraction(updates, alpha):
    framework, models = make_framework(len(updates), alpha=alpha)
    ref_before = {k: v.copy() for k, v in framework.reference.items()}
    for i, (model, upd) in enumerate(zip(models, updates)):
        before = framework.capture(i)
        for _, p in model.named_parameters():
            p.data = p.data + np.float32(upd)
        post_opt = {k: v.copy() for k, v in model.state_dict().items()}
        framework.commit(i, before)
        for name, p in model.named_parameters():
            dist_before = np.abs(post_opt[name] - ref_before[name]).max()
            dist_after = np.abs(p.data - ref_before[name]).max()
            assert dist_after <= dist_before * (1 - alpha) + 1e-5


@settings(max_examples=20, deadline=None)
@given(updates=updates_strategy, shift=st.floats(-2.0, 2.0))
def test_translation_equivariance(updates, shift):
    f1, m1 = make_framework(len(updates))
    f2, m2 = make_framework(len(updates))
    for model in m2:
        for _, p in model.named_parameters():
            p.data = p.data + np.float32(shift)
    for name in f2.reference:
        f2.reference[name] = f2.reference[name] + np.float32(shift)
    ups = [np.float32(u) for u in updates]
    apply_updates(f1, m1, ups)
    apply_updates(f2, m2, ups)
    for name in f1.reference:
        assert np.allclose(f2.reference[name], f1.reference[name] + shift, atol=1e-4)
    for a, b in zip(m1, m2):
        sa, sb = a.state_dict(), b.state_dict()
        for k in sa:
            assert np.allclose(sb[k], sa[k] + shift, atol=1e-4)


@settings(max_examples=20, deadline=None)
@given(updates=updates_strategy)
def test_sum_is_n_times_mean_on_the_reference(updates):
    n = len(updates)
    ups = [np.float32(u) for u in updates]
    f_mean, m_mean = make_framework(n, update_normalization="mean")
    f_sum, m_sum = make_framework(n, update_normalization="sum")
    ref0 = {k: v.copy() for k, v in f_mean.reference.items()}
    apply_updates(f_mean, m_mean, ups)
    apply_updates(f_sum, m_sum, ups)
    for name in ref0:
        step_mean = f_mean.reference[name] - ref0[name]
        step_sum = f_sum.reference[name] - ref0[name]
        assert np.allclose(step_sum, n * step_mean, atol=1e-4)


# ---------------------------------------------------------------------- #
# alpha = 1/N fixed point


@pytest.mark.parametrize("n", [2, 3, 4])
def test_alpha_reciprocal_zero_update_is_a_fixed_point(n):
    """All pipelines equal and no local progress: the averaging round must
    change nothing — the reference exactly (zero accumulated update), the
    models up to dilution round-off ((1-a)x + a*x re-rounds unless a is a
    power of two, so n in {2, 4} is bitwise and n = 3 is within 1 ulp)."""
    framework, models = make_framework(n, alpha=None)  # alpha defaults to 1/N
    ref0 = {k: v.copy() for k, v in framework.reference.items()}
    states0 = [m.state_dict() for m in models]
    apply_updates(framework, models, [np.float32(0.0)] * n)
    for name in ref0:
        np.testing.assert_array_equal(framework.reference[name], ref0[name])
    for model, s0 in zip(models, states0):
        for k, v in model.state_dict().items():
            if n in (2, 4):  # 1/n exactly representable: dilution is exact
                np.testing.assert_array_equal(v, s0[k])
            else:
                np.testing.assert_allclose(v, s0[k], rtol=2e-7, atol=0)
    assert framework.divergence() < 1e-6


@settings(max_examples=20, deadline=None)
@given(update=st.floats(-0.5, 0.5), rounds=st.integers(1, 6))
def test_identical_updates_keep_pipelines_identical(update, rounds):
    """With alpha = 1/N, pipelines applying the *same* local update stay
    bitwise equal to each other — elastic averaging introduces no
    asymmetry between equally-progressing pipelines."""
    framework, models = make_framework(3, alpha=None)
    for _ in range(rounds):
        apply_updates(framework, models, [np.float32(update)] * 3)
        base = models[0].state_dict()
        for m in models[1:]:
            for k, v in m.state_dict().items():
                np.testing.assert_array_equal(v, base[k])


# ---------------------------------------------------------------------- #
# center-update equivalence with classic EASGD


def test_easgd_center_update_equivalence():
    """One framework round (alpha = lr*rho, sync queue, local SGD) is
    EASGD's round: workers move identically, and the centers move along
    the same accumulated-update direction with the known scales — EASGD's
    center gains alpha * sum(delta) while the mean-normalized reference
    gains (1/N) * sum(delta), so delta_center = N * alpha * delta_ref
    (they would coincide at alpha = 1/N, which EASGD's stability guard
    n * alpha < 1 deliberately excludes)."""
    from repro.optim import EASGD

    n, lr, rho = 3, 0.5, 0.2
    alpha = lr * rho

    framework, fw_models = make_framework(n, alpha=alpha)
    ea_models = [PipelineModel(layers=[_Probe()], name="probe") for _ in range(n)]
    center = PipelineModel(layers=[_Probe()], name="probe")
    base = fw_models[0].state_dict()
    for m in (*ea_models, center):
        m.load_state_dict(base)
    easgd = EASGD(ea_models, center, lr=lr, rho=rho)

    rng = np.random.default_rng(17)
    grads = [
        {name: rng.standard_normal(p.shape).astype(np.float32) for name, p in m.named_parameters()}
        for m in fw_models
    ]
    ref_before = {k: v.copy() for k, v in framework.reference.items()}
    center_before = center.state_dict()

    for i, model in enumerate(fw_models):
        before = framework.capture(i)
        for name, p in model.named_parameters():
            p.data = p.data - lr * grads[i][name]  # EASGD.local_step's update
        framework.commit(i, before)
    framework.end_iteration()

    for i, model in enumerate(ea_models):
        for name, p in model.named_parameters():
            p.grad = grads[i][name]
        easgd.local_step(i)
    easgd.sync()

    for fw_m, ea_m in zip(fw_models, ea_models):
        for k, v in fw_m.state_dict().items():
            np.testing.assert_allclose(v, ea_m.state_dict()[k], atol=1e-6)
    center_after = center.state_dict()
    for name in ref_before:
        delta_ref = framework.reference[name] - ref_before[name]
        delta_center = center_after[name] - center_before[name]
        np.testing.assert_allclose(delta_center, n * alpha * delta_ref, atol=1e-6)


# ---------------------------------------------------------------------- #
# conservation of the weighted mean


@settings(max_examples=20, deadline=None)
@given(updates=updates_strategy, seed=st.integers(0, 100))
def test_one_round_conserves_sum_of_models_plus_reference(updates, seed):
    """With alpha = 1/N, mean normalization and a synchronous queue, one
    averaging round redistributes but does not create mass: starting from
    reference == mean(models) (the constructor's invariant),
    sum(models) + reference is the same before dilution and after the
    reference applied the accumulated update."""
    n = len(updates)
    models = [PipelineModel(layers=[_Probe()], name="probe") for _ in range(n)]
    rng = np.random.default_rng(seed)
    for m in models:  # distinct starting points — conservation must not rely on symmetry
        for _, p in m.named_parameters():
            p.data = rng.standard_normal(p.shape).astype(np.float32)
    framework = ElasticAveragingFramework(models, alpha=None, queue_delay=0)

    post_opt_total: dict[str, np.ndarray] = {}
    for i, (model, upd) in enumerate(zip(models, updates)):
        before = framework.capture(i)
        for name, p in model.named_parameters():
            p.data = p.data + np.float32(upd)
            post_opt_total[name] = post_opt_total.get(name, 0.0) + p.data.astype(np.float64)
        framework.commit(i, before)
    ref_before = {k: v.astype(np.float64) for k, v in framework.reference.items()}
    framework.end_iteration()

    for name in ref_before:
        total_before = post_opt_total[name] + ref_before[name]
        total_after = sum(
            dict(m.named_parameters())[name].data.astype(np.float64) for m in models
        ) + framework.reference[name].astype(np.float64)
        np.testing.assert_allclose(total_after, total_before, atol=1e-5)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000))
def test_divergence_bounded_under_bounded_updates(seed):
    rng = np.random.default_rng(seed)
    framework, models = make_framework(3, alpha=1.0 / 3.0)
    divergences = []
    for _ in range(15):
        ups = [rng.uniform(-0.1, 0.1) for _ in models]
        apply_updates(framework, models, [np.float32(u) for u in ups])
        divergences.append(framework.divergence())
    # With |update| <= 0.1 and alpha = 1/3 the stationary divergence is
    # O(|update| / alpha); allow generous slack but forbid blow-up.
    assert max(divergences[5:]) < 1.0


# ---------------------------------------------------------------------- #
# grow path: add_model (the scheduler's grow lever)


def _fresh_probe_model(seed=0):
    rng = np.random.default_rng(seed)
    model = PipelineModel(layers=[_Probe()], name="probe")
    for _, p in model.named_parameters():
        p.data = rng.standard_normal(p.shape).astype(np.float32)
    return model


def test_add_model_seeds_newcomer_from_reference_bitwise():
    """The default rejoin restarts the newcomer at the reference exactly,
    so its first dilution is a no-op and its first delta is measured from
    the center."""
    framework, _ = make_framework(2)
    newcomer = _fresh_probe_model(seed=99)  # arbitrary stale weights
    index = framework.add_model(newcomer)
    assert index == 2
    for name, p in newcomer.named_parameters():
        np.testing.assert_array_equal(p.data, framework.reference[name])


def test_add_model_keeps_weights_when_not_seeding():
    framework, _ = make_framework(2)
    newcomer = _fresh_probe_model(seed=99)
    stale = {k: v.copy() for k, v in newcomer.state_dict().items()}
    framework.add_model(newcomer, seed_from_reference=False)
    for k, v in newcomer.state_dict().items():
        np.testing.assert_array_equal(v, stale[k])


def test_add_model_rejects_mismatched_structure():
    framework, _ = make_framework(2)

    class _Other(PipelineLayer):
        def __init__(self):
            super().__init__()
            self.other = Linear(3, 3, bias=False)

        def forward(self, bundle):
            return bundle

        def flops_per_sample(self):
            return 1.0

        def activation_floats_per_sample(self):
            return 1.0

    with pytest.raises(ValueError, match="mismatched parameter structure"):
        framework.add_model(PipelineModel(layers=[_Other()], name="other"))


@pytest.mark.parametrize("n_before, grows", [(1, 1), (2, 1), (2, 2), (3, 1)])
def test_post_grow_alpha_is_reciprocal_and_zero_update_fixed_point(n_before, grows):
    """After growing N -> N', an automatic alpha renormalizes to 1/N' and
    the all-equal zero-update state is still a fixed point of the round
    (the grow-side mirror of the evict-path test above)."""
    framework, models = make_framework(n_before, alpha=None)
    for _ in range(grows):
        models.append(_fresh_probe_model(seed=7))
        framework.add_model(models[-1])
    n_after = n_before + grows
    assert framework.num_parallel == n_after
    assert framework.alpha == pytest.approx(1.0 / n_after)
    ref0 = {k: v.copy() for k, v in framework.reference.items()}
    apply_updates(framework, models, [np.float32(0.0)] * n_after)
    for name in ref0:
        np.testing.assert_array_equal(framework.reference[name], ref0[name])
    assert framework.divergence() < 1e-6


def test_add_model_keeps_explicit_alpha():
    framework, _ = make_framework(2, alpha=0.4)
    framework.add_model(_fresh_probe_model(seed=3))
    assert framework.alpha == pytest.approx(0.4)


def test_add_model_discards_the_inflight_round():
    """Queued deltas were produced under the old N's normalization; a
    membership change must drop them, so the next reference advance needs
    a full round from all N' models."""
    framework, models = make_framework(2)
    before = framework.capture(0)
    for _, p in models[0].named_parameters():
        p.data = p.data + np.float32(0.25)
    framework.commit(0, before)  # one delta in flight
    ref0 = {k: v.copy() for k, v in framework.reference.items()}
    framework.add_model(_fresh_probe_model(seed=11))
    assert framework.end_iteration() is False  # no stale delta survives
    for name in ref0:
        np.testing.assert_array_equal(framework.reference[name], ref0[name])


@settings(max_examples=20, deadline=None)
@given(updates=updates_strategy, grow_update=st.floats(-1.0, 1.0))
def test_post_grow_round_conserves_sum_of_models_plus_reference(updates, grow_update):
    """Conservation (the evict-path invariant above) survives a grow:
    from the all-equal state, admitting a reference-seeded newcomer keeps
    reference == mean(models), so the first full post-grow round still
    only redistributes mass."""
    n_before = len(updates)
    framework, models = make_framework(n_before, alpha=None)
    models.append(_fresh_probe_model(seed=23))
    framework.add_model(models[-1])
    ups = [np.float32(u) for u in updates] + [np.float32(grow_update)]

    post_opt_total: dict[str, np.ndarray] = {}
    for i, (model, upd) in enumerate(zip(models, ups)):
        before = framework.capture(i)
        for name, p in model.named_parameters():
            p.data = p.data + upd
            post_opt_total[name] = post_opt_total.get(name, 0.0) + p.data.astype(np.float64)
        framework.commit(i, before)
    ref_before = {k: v.astype(np.float64) for k, v in framework.reference.items()}
    framework.end_iteration()

    for name in ref_before:
        total_before = post_opt_total[name] + ref_before[name]
        total_after = sum(
            dict(m.named_parameters())[name].data.astype(np.float64) for m in models
        ) + framework.reference[name].astype(np.float64)
        np.testing.assert_allclose(total_after, total_before, atol=1e-5)


def test_add_model_parity_with_rejoin_pipeline_policy():
    """trainer.rejoin_pipeline and the RejoinPipeline recovery policy are
    the same lever: starting from identical trainers, both leave the
    framework in a bitwise-identical state (newcomer seeded from the
    reference, alpha = 1/N')."""
    from repro.resilience import RejoinPipeline
    from repro.resilience.chaos import tiny_chaos_spec

    from repro.core.trainer import AvgPipeTrainer

    spec = tiny_chaos_spec()
    t_direct = AvgPipeTrainer(spec, seed=0, num_pipelines=2, max_epochs=1)
    t_policy = AvgPipeTrainer(spec, seed=0, num_pipelines=2, max_epochs=1)

    joined_direct = t_direct.rejoin_pipeline()
    outcome = RejoinPipeline().apply(t_policy)

    assert outcome["joined_as"] == joined_direct
    assert t_policy.num_pipelines == t_direct.num_pipelines == 3
    assert t_policy.framework.alpha == pytest.approx(t_direct.framework.alpha)
    for m_d, m_p in zip(t_direct.framework.models, t_policy.framework.models):
        sd, sp = m_d.state_dict(), m_p.state_dict()
        for k in sd:
            np.testing.assert_array_equal(sp[k], sd[k])
    for name in t_direct.framework.reference:
        np.testing.assert_array_equal(
            t_policy.framework.reference[name], t_direct.framework.reference[name]
        )
