"""Property-based tests on the elastic-averaging framework.

Random update sequences; the invariants:

* the dilution is a contraction — after commit, each model is strictly
  closer to the (pre-commit) reference than its post-optimizer position;
* the reference is translation-equivariant — shifting every model and
  the updates by a constant shifts the whole trajectory by it;
* "sum" normalization advances the reference exactly N times "mean";
* divergence stays bounded under bounded updates (no drift blow-up).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ElasticAveragingFramework
from repro.models.pipeline_model import ActivationBundle, PipelineLayer, PipelineModel
from repro.nn import Linear


class _Probe(PipelineLayer):
    """Minimal one-layer pipeline model for framework math tests."""

    def __init__(self, dim: int = 4) -> None:
        super().__init__()
        self.fc = Linear(dim, dim, bias=False)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        return bundle

    def flops_per_sample(self) -> float:
        return 1.0

    def activation_floats_per_sample(self) -> float:
        return 1.0


def make_framework(n, alpha=None, seed=0, **kwargs):
    models = [PipelineModel(layers=[_Probe()], name="probe") for _ in range(n)]
    base = models[0].state_dict()
    for m in models[1:]:
        m.load_state_dict(base)
    return ElasticAveragingFramework(models, alpha=alpha, queue_delay=0, **kwargs), models


def apply_updates(framework, models, updates):
    for i, (model, upd) in enumerate(zip(models, updates)):
        before = framework.capture(i)
        for _, p in model.named_parameters():
            p.data = p.data + upd.astype(np.float32)
        framework.commit(i, before)
    framework.end_iteration()


updates_strategy = st.lists(
    st.floats(-1.0, 1.0).filter(lambda x: abs(x) > 1e-3), min_size=2, max_size=4
)


@settings(max_examples=30, deadline=None)
@given(updates=updates_strategy, alpha=st.floats(0.05, 0.95))
def test_dilution_is_a_contraction(updates, alpha):
    framework, models = make_framework(len(updates), alpha=alpha)
    ref_before = {k: v.copy() for k, v in framework.reference.items()}
    for i, (model, upd) in enumerate(zip(models, updates)):
        before = framework.capture(i)
        for _, p in model.named_parameters():
            p.data = p.data + np.float32(upd)
        post_opt = {k: v.copy() for k, v in model.state_dict().items()}
        framework.commit(i, before)
        for name, p in model.named_parameters():
            dist_before = np.abs(post_opt[name] - ref_before[name]).max()
            dist_after = np.abs(p.data - ref_before[name]).max()
            assert dist_after <= dist_before * (1 - alpha) + 1e-5


@settings(max_examples=20, deadline=None)
@given(updates=updates_strategy, shift=st.floats(-2.0, 2.0))
def test_translation_equivariance(updates, shift):
    f1, m1 = make_framework(len(updates))
    f2, m2 = make_framework(len(updates))
    for model in m2:
        for _, p in model.named_parameters():
            p.data = p.data + np.float32(shift)
    for name in f2.reference:
        f2.reference[name] = f2.reference[name] + np.float32(shift)
    ups = [np.float32(u) for u in updates]
    apply_updates(f1, m1, ups)
    apply_updates(f2, m2, ups)
    for name in f1.reference:
        assert np.allclose(f2.reference[name], f1.reference[name] + shift, atol=1e-4)
    for a, b in zip(m1, m2):
        sa, sb = a.state_dict(), b.state_dict()
        for k in sa:
            assert np.allclose(sb[k], sa[k] + shift, atol=1e-4)


@settings(max_examples=20, deadline=None)
@given(updates=updates_strategy)
def test_sum_is_n_times_mean_on_the_reference(updates):
    n = len(updates)
    ups = [np.float32(u) for u in updates]
    f_mean, m_mean = make_framework(n, update_normalization="mean")
    f_sum, m_sum = make_framework(n, update_normalization="sum")
    ref0 = {k: v.copy() for k, v in f_mean.reference.items()}
    apply_updates(f_mean, m_mean, ups)
    apply_updates(f_sum, m_sum, ups)
    for name in ref0:
        step_mean = f_mean.reference[name] - ref0[name]
        step_sum = f_sum.reference[name] - ref0[name]
        assert np.allclose(step_sum, n * step_mean, atol=1e-4)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000))
def test_divergence_bounded_under_bounded_updates(seed):
    rng = np.random.default_rng(seed)
    framework, models = make_framework(3, alpha=1.0 / 3.0)
    divergences = []
    for _ in range(15):
        ups = [rng.uniform(-0.1, 0.1) for _ in models]
        apply_updates(framework, models, [np.float32(u) for u in ups])
        divergences.append(framework.divergence())
    # With |update| <= 0.1 and alpha = 1/3 the stationary divergence is
    # O(|update| / alpha); allow generous slack but forbid blow-up.
    assert max(divergences[5:]) < 1.0
