"""Ring all-reduce: correctness of the step-accurate simulation and its
relation to the analytic bound and to the DP runner's approximation."""

import pytest

from repro.sim import ClusterSpec, Simulator, make_cluster
from repro.sim.collectives import ring_allreduce, ring_allreduce_lower_bound

GIB = 2**30


def cluster_of(k, nodes=None):
    sim = Simulator()
    nodes = nodes or k // 2
    return make_cluster(
        sim, k, spec=ClusterSpec(nodes=nodes, gpus_per_node=k // nodes, memory_bytes=GIB)
    )


class TestRingAllreduce:
    def test_completion_time_matches_lower_bound_exactly(self):
        """With a bulk-synchronous ring, every phase is paced by the
        slowest link, so the simulation should land on the bound."""
        cluster = cluster_of(6)
        done = ring_allreduce(cluster, nbytes=6e6)
        cluster.sim.run_until_process(done)
        expected = ring_allreduce_lower_bound(cluster, 6e6)
        assert cluster.sim.now == pytest.approx(expected, rel=0.05)

    def test_scales_linearly_in_bytes(self):
        t = []
        for nbytes in (3e6, 6e6):
            cluster = cluster_of(6)
            done = ring_allreduce(cluster, nbytes=nbytes)
            cluster.sim.run_until_process(done)
            t.append(cluster.sim.now)
        assert t[1] == pytest.approx(2 * t[0], rel=0.05)

    def test_single_device_is_free(self):
        sim = Simulator()
        cluster = make_cluster(sim, 1, spec=ClusterSpec(nodes=1, gpus_per_node=1, memory_bytes=GIB))
        done = ring_allreduce(cluster, nbytes=1e9)
        sim.run_until_process(done)
        assert sim.now == pytest.approx(0.0)

    def test_cross_node_ring_dominated_by_ethernet(self):
        """A ring over 3 nodes pays the 1 Gbps hops; an intra-node ring of
        the same size would be orders faster."""
        multi = cluster_of(6, nodes=3)
        done = ring_allreduce(multi, nbytes=6e6)
        multi.sim.run_until_process(done)
        t_multi = multi.sim.now

        single = cluster_of(6, nodes=1)
        done = ring_allreduce(single, nbytes=6e6)
        single.sim.run_until_process(done)
        t_single = single.sim.now
        assert t_multi > 10 * t_single

    def test_dp_runner_approximation_within_factor_of_faithful_ring(self):
        """The DataParallel runner models the all-reduce as one transfer of
        2(K-1)/K x bytes per device over the inter-node NIC (times a
        protocol-inefficiency factor).  At inefficiency 1.0 it must agree
        with the faithful ring within ~2x either way."""
        from repro.graph import LayerCost
        from repro.schedules import DataParallelSimRunner

        nbytes = 6e6
        cluster = cluster_of(6, nodes=3)
        done = ring_allreduce(cluster, nbytes=nbytes)
        cluster.sim.run_until_process(done)
        t_ring = cluster.sim.now

        costs = [LayerCost("l", flops_per_sample=1.0, activation_bytes_per_sample=1.0,
                           param_bytes=int(nbytes))]
        cluster2 = cluster_of(6, nodes=3)
        runner = DataParallelSimRunner(cluster2, costs, batch_size=6,
                                       allreduce_inefficiency=1.0)
        res = runner.run(iterations=1)
        t_comm = max(res.comm_sent_time)
        assert t_ring / 2.5 <= t_comm <= t_ring * 2.5
