"""Integration: the paper's headline qualitative claims at calibrated scale.

Each test pins one claim from §7 that the benchmark harness reports in
full; failures here mean the reproduction story itself regressed.  These
use the real calibrations (repro.core.simcfg) and are therefore the
slowest tests in the suite.
"""

import numpy as np
import pytest

from repro.baselines import BASELINE_SYSTEMS, choose_baseline_micro, simulate_baseline
from repro.core import AvgPipe
from repro.core.profiler import Profiler
from repro.core.simcfg import calibration_for
from repro.schedules import AFABSchedule, AdvanceFPSchedule, OneFOneBSchedule


def profiler_for(cal, schedule):
    return Profiler(
        layer_costs=cal.layer_costs(),
        partition=cal.partition(),
        schedule=schedule,
        cluster_spec=cal.cluster_spec(),
        batch_size=cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        with_reference_model=True,
    )


@pytest.fixture(scope="module")
def gnmt_cal():
    return calibration_for("gnmt")


@pytest.fixture(scope="module")
def bert_cal():
    return calibration_for("bert")


class TestFigure11And12Claims:
    def test_data_parallel_slowest_on_every_workload(self):
        for wl in ("gnmt", "bert", "awd"):
            cal = calibration_for(wl)
            dp = simulate_baseline(BASELINE_SYSTEMS["pytorch"], cal, iterations=2)
            gp = simulate_baseline(
                BASELINE_SYSTEMS["gpipe"], cal,
                num_micro=choose_baseline_micro(BASELINE_SYSTEMS["gpipe"], cal),
                iterations=2,
            )
            assert dp.batch_time > gp.batch_time, wl

    def test_data_parallel_highest_memory_footprint(self):
        """Paper: the DP replica gives the highest footprint.  On our
        calibrated GNMT the AFAB activation stash of GPipe's stage 0 ties
        DP within ~1% (recorded as a deviation in EXPERIMENTS.md), so the
        GNMT assertion allows that tolerance; BERT and AWD are strict."""
        for wl, tolerance in (("gnmt", 0.95), ("bert", 1.0), ("awd", 1.0)):
            cal = calibration_for(wl)
            dp = simulate_baseline(BASELINE_SYSTEMS["pytorch"], cal, iterations=1)
            gp = simulate_baseline(
                BASELINE_SYSTEMS["gpipe"], cal,
                num_micro=choose_baseline_micro(BASELINE_SYSTEMS["gpipe"], cal),
                iterations=1,
            )
            assert max(dp.peak_memory) > tolerance * max(gp.peak_memory), wl

    def test_pipedream_oom_on_bert_but_not_gnmt(self, bert_cal, gnmt_cal):
        with pytest.raises(RuntimeError):
            choose_baseline_micro(BASELINE_SYSTEMS["pipedream"], bert_cal)
        m = choose_baseline_micro(BASELINE_SYSTEMS["pipedream"], gnmt_cal)
        assert m >= 1

    def test_avgpipe_beats_gpipe_on_gnmt_within_its_memory(self, gnmt_cal):
        gpipe = BASELINE_SYSTEMS["gpipe"]
        m = choose_baseline_micro(gpipe, gnmt_cal)
        base = simulate_baseline(gpipe, gnmt_cal, num_micro=m, iterations=2)
        system = AvgPipe("gnmt")
        plan = system.plan(memory_limit_bytes=max(base.peak_memory), n_candidates=[1, 2, 3])
        ours = system.simulate(plan, iterations=2)
        assert ours.oom is None
        assert max(ours.peak_memory) <= max(base.peak_memory)
        speedup = base.time_per_batch / ours.time_per_batch
        assert speedup > 1.15, f"AvgPipe(G) speedup only {speedup:.2f}"

    def test_avgpipe_improves_gpu_utilization(self, gnmt_cal):
        gpipe = BASELINE_SYSTEMS["gpipe"]
        m = choose_baseline_micro(gpipe, gnmt_cal)
        base = simulate_baseline(gpipe, gnmt_cal, num_micro=m, iterations=2)
        system = AvgPipe("gnmt")
        plan = system.plan(memory_limit_bytes=max(base.peak_memory), n_candidates=[1, 2, 3])
        ours = system.simulate(plan, iterations=2)
        assert ours.avg_utilization > base.avg_utilization * 1.3


class TestFigure17Claims:
    def test_bert_schedule_time_ordering(self, bert_cal):
        """BERT (balanced stages): AFAB <= advance-FP <= 1F1B in time."""
        times = {}
        for name, sched in [
            ("afab", AFABSchedule()),
            ("adv", AdvanceFPSchedule(4)),
            ("1f1b", OneFOneBSchedule(versions=1)),
        ]:
            res = profiler_for(bert_cal, sched).run_setting(16, 1, iterations=3)
            assert res.oom is None
            times[name] = res.batch_time
        assert times["afab"] <= times["adv"] <= times["1f1b"]

    def test_memory_ordering_both_workloads(self, gnmt_cal, bert_cal):
        """1F1B < advance-FP < AFAB in peak memory (Figure 17b)."""
        for cal, m in ((gnmt_cal, 32), (bert_cal, 16)):
            mems = {}
            for name, sched in [
                ("afab", AFABSchedule()),
                ("adv", AdvanceFPSchedule(2)),
                ("1f1b", OneFOneBSchedule(versions=1)),
            ]:
                res = profiler_for(cal, sched).run_setting(m, 1, iterations=1)
                if res.oom is not None:
                    mems[name] = float("inf")
                else:
                    mems[name] = max(res.peak_memory)
            assert mems["1f1b"] < mems["adv"] <= mems["afab"]

    def test_per_gpu_stash_decreases_downstream_under_1f1b(self, bert_cal):
        """Figure 17c: the k-th GPU stashes K-k+1 micro-batches."""
        res = profiler_for(bert_cal, OneFOneBSchedule(versions=1)).run_setting(16, 1, iterations=1)
        stash = res.data_memory_peak
        assert stash == sorted(stash, reverse=True)
        assert stash[0] > stash[-1]

    def test_awd_single_micro_batch_schedules_equal(self):
        """§7.2: with M=1 the three schedules coincide on AWD."""
        cal = calibration_for("awd")
        times = []
        for sched in (AFABSchedule(), OneFOneBSchedule(versions=1), AdvanceFPSchedule(3)):
            res = profiler_for(cal, sched).run_setting(1, 2, iterations=2)
            times.append(res.batch_time)
        assert max(times) == pytest.approx(min(times), rel=1e-9)


class TestTunerClaims:
    def test_profiling_tuner_picks_different_regimes_per_workload(self):
        """Figure 19's insight: bubbles dominate GNMT/BERT (tuner raises M),
        arithmetic intensity dominates AWD (tuner keeps M small)."""
        gnmt_plan = AvgPipe("gnmt").plan(n_candidates=[1, 2, 3])
        awd_plan = AvgPipe("awd").plan(n_candidates=[1, 2, 3])
        assert gnmt_plan.num_micro >= 16
        assert awd_plan.num_micro <= 4
