"""Discrete-event engine: events, processes, processor sharing, memory."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    AllOf,
    Event,
    MemoryLedger,
    OutOfMemoryError,
    SharedResource,
    Simulator,
)


class TestEventsAndProcesses:
    def test_timeout_ordering(self):
        sim = Simulator()
        order = []

        def proc(name, delay):
            yield sim.timeout(delay)
            order.append(name)

        sim.process(proc("late", 2.0))
        sim.process(proc("early", 1.0))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == pytest.approx(2.0)

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []

        def proc(name):
            yield sim.timeout(1.0)
            order.append(name)

        for i in range(5):
            sim.process(proc(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_event_value_passed_to_process(self):
        sim = Simulator()
        seen = []

        def proc(ev):
            value = yield ev
            seen.append(value)

        ev = sim.event()
        sim.process(proc(ev))
        sim.schedule(1.0, ev)
        ev.value = "payload"
        sim.run()
        assert seen == ["payload"]

    def test_double_succeed_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_all_of_waits_for_every_child(self):
        sim = Simulator()
        done = []

        def child(delay):
            yield sim.timeout(delay)

        procs = [sim.process(child(d)) for d in (1.0, 3.0, 2.0)]

        def waiter():
            yield AllOf(sim, procs)
            done.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert done == [pytest.approx(3.0)]

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()
        fired = []

        def waiter():
            yield AllOf(sim, [])
            fired.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert fired == [0.0]

    def test_process_return_value(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(1.0)
            return 42

        results = []

        def outer():
            value = yield sim.process(inner())
            results.append(value)

        sim.process(outer())
        sim.run()
        assert results == [42]

    def test_deadlock_detection(self):
        sim = Simulator()

        def stuck():
            yield sim.event()  # never succeeds

        proc = sim.process(stuck())
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run_until_process(proc)

    def test_yield_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(TypeError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)


class TestProcessorSharing:
    def _run_one(self, capacity, jobs):
        """jobs: list of (work, demand, start). Returns dict idx -> finish."""
        sim = Simulator()
        res = SharedResource(sim, capacity=capacity)
        finishes = {}

        def proc(i, work, demand, start):
            yield sim.timeout(start)
            yield res.execute(work, demand)
            finishes[i] = sim.now

        for i, job in enumerate(jobs):
            sim.process(proc(i, *job))
        sim.run()
        return finishes

    def test_single_task_duration(self):
        out = self._run_one(10.0, [(50.0, 0.5, 0.0)])
        assert out[0] == pytest.approx(10.0)  # 50 / (10 * 0.5)

    def test_undersubscribed_tasks_do_not_interfere(self):
        out = self._run_one(10.0, [(25.0, 0.5, 0.0), (25.0, 0.5, 0.0)])
        assert out[0] == pytest.approx(5.0)
        assert out[1] == pytest.approx(5.0)

    def test_oversubscription_stretches_proportionally(self):
        # Two demand-1.0 tasks share: each at 5 units/s.
        out = self._run_one(10.0, [(50.0, 1.0, 0.0), (50.0, 1.0, 0.0)])
        assert out[0] == pytest.approx(10.0)
        assert out[1] == pytest.approx(10.0)

    def test_late_joiner_slows_existing_task(self):
        # Verified by hand in the executor smoke test:
        out = self._run_one(10.0, [(50.0, 0.5, 0.0), (50.0, 0.5, 0.0), (50.0, 0.8, 2.0)])
        assert out[2] == pytest.approx(13.25, abs=1e-6)
        assert out[0] == pytest.approx(15.0, abs=1e-6)

    def test_zero_work_completes_instantly(self):
        out = self._run_one(10.0, [(0.0, 1.0, 3.0)])
        assert out[0] == pytest.approx(3.0)

    def test_invalid_demand(self):
        sim = Simulator()
        res = SharedResource(sim, capacity=1.0)
        with pytest.raises(ValueError):
            res.execute(1.0, 0.0)
        with pytest.raises(ValueError):
            res.execute(1.0, 1.5)

    @settings(max_examples=30, deadline=None)
    @given(
        works=st.lists(st.floats(1.0, 100.0), min_size=1, max_size=5),
        demands=st.lists(st.floats(0.1, 1.0), min_size=5, max_size=5),
    )
    def test_work_conservation(self, works, demands):
        """Total work completed equals capacity x utilization integral."""
        sim = Simulator()
        res = SharedResource(sim, capacity=7.0)

        def proc(work, demand):
            yield res.execute(work, demand)

        for w, d in zip(works, demands):
            sim.process(proc(w, d))
        sim.run()
        done_work = sum(works)
        integral = res.utilization_integral(sim.now) * 7.0
        assert integral == pytest.approx(done_work, rel=1e-6)

    def test_utilization_steps_recorded(self):
        sim = Simulator()
        res = SharedResource(sim, capacity=10.0)

        def proc():
            yield res.execute(50.0, 0.5)

        sim.process(proc())
        sim.run()
        # Steps: initial 0, rise to 0.5, fall back to 0.
        values = [u for _, u in res.utilization_steps]
        assert 0.5 in values
        assert values[-1] == 0.0

    def test_busy_time(self):
        sim = Simulator()
        res = SharedResource(sim, capacity=10.0)

        def proc(delay):
            yield sim.timeout(delay)
            yield res.execute(10.0, 1.0)

        sim.process(proc(0.0))
        sim.process(proc(5.0))
        sim.run()
        assert res.busy_time(sim.now) == pytest.approx(2.0)  # two disjoint 1s tasks


class TestMemoryLedger:
    def test_alloc_free_peak(self):
        mem = MemoryLedger(capacity=100)
        mem.alloc(60, tag="weights")
        mem.alloc(30, tag="acts")
        mem.free(30, tag="acts")
        assert mem.used == 60
        assert mem.peak == 90
        assert mem.peak_by_tag["acts"] == 30

    def test_oom_raises_with_context(self):
        mem = MemoryLedger(capacity=100, device_name="gpu3")
        mem.alloc(90)
        with pytest.raises(OutOfMemoryError) as err:
            mem.alloc(20, tag="activations")
        assert err.value.device == "gpu3"
        assert err.value.tag == "activations"

    def test_unenforced_alloc_records_over_capacity(self):
        mem = MemoryLedger(capacity=100)
        mem.alloc(150, tag="weights", enforce=False)
        assert mem.peak == 150

    def test_overfree_rejected(self):
        mem = MemoryLedger(capacity=100)
        mem.alloc(10, tag="a")
        with pytest.raises(ValueError):
            mem.free(20, tag="a")

    def test_free_wrong_tag_rejected(self):
        mem = MemoryLedger(capacity=100)
        mem.alloc(10, tag="a")
        with pytest.raises(ValueError):
            mem.free(10, tag="b")
