"""Fault plans and injection: seeded, deterministic, exact mid-flight."""

import numpy as np
import pytest

from repro.resilience import FAULT_KINDS, FaultEvent, FaultInjector, FaultPlan
from repro.schedules import OneFOneBSchedule, PipelineSimRunner, StageCosts
from repro.sim import ClusterSpec, Simulator, make_cluster
from repro.sim.trace import SpanKind


def make_setup(pipelines=3, num_micro=8):
    sim = Simulator()
    cluster = make_cluster(sim, 4, spec=ClusterSpec(nodes=2, gpus_per_node=2))
    costs = StageCosts(
        fwd_flops=(4.0e6,) * 4,
        act_out_bytes=(2.0e6,) * 4,
        stash_bytes=(6.0e6,) * 4,
        param_bytes=(1_000_000,) * 4,
    )
    runner = PipelineSimRunner(
        cluster, OneFOneBSchedule(versions=1), costs,
        num_micro=num_micro, mb_size=8.0, num_pipelines=pipelines,
    )
    return sim, cluster, runner


def fault_free_time(iterations=6):
    _, _, runner = make_setup()
    return runner.run(iterations=iterations).total_time


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor", 1.0, 0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent("device_crash", -1.0, 0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent("device_crash", 1.0, 0, duration=0.0)

    def test_slowdown_needs_factor_above_one(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent("device_slowdown", 1.0, 0, duration=1.0, factor=1.0)

    def test_link_target_must_be_pair(self):
        with pytest.raises(ValueError, match="pair"):
            FaultEvent("link_partition", 1.0, 0, duration=1.0)

    def test_dict_round_trip(self):
        event = FaultEvent("link_degrade", 2.5, (0, 1), duration=1.0, factor=3.0)
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=[
            FaultEvent("device_crash", 5.0, 0, duration=1.0),
            FaultEvent("device_crash", 1.0, 1, duration=1.0),
        ])
        assert [e.at for e in plan.events] == [1.0, 5.0]

    def test_dict_round_trip(self):
        plan = FaultPlan.random(seed=3, horizon=10.0, num_pipelines=3, num_devices=4)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.events == plan.events
        assert again.seed == plan.seed

    def test_random_is_deterministic_in_the_seed(self):
        a = FaultPlan.random(seed=7, horizon=10.0, num_pipelines=3, num_devices=4,
                             num_events=5)
        b = FaultPlan.random(seed=7, horizon=10.0, num_pipelines=3, num_devices=4,
                             num_events=5)
        c = FaultPlan.random(seed=8, horizon=10.0, num_pipelines=3, num_devices=4,
                             num_events=5)
        assert a.events == b.events
        assert a.events != c.events

    def test_random_events_are_valid_and_within_horizon(self):
        plan = FaultPlan.random(seed=0, horizon=20.0, num_pipelines=2, num_devices=4,
                                num_events=10)
        assert len(plan) == 10
        for event in plan.events:
            assert event.kind in FAULT_KINDS
            assert 0 <= event.at < 20.0


class TestFaultInjector:
    def test_pipeline_crash_spares_survivors(self):
        t0 = fault_free_time()
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[FaultEvent("pipeline_crash", 0.4 * t0, 1)]))
        runner.run(iterations=6)
        assert runner.iterations_completed[0] == 6
        assert runner.iterations_completed[2] == 6
        assert runner.iterations_completed[1] < 6
        assert injector.log[0].applied_at == pytest.approx(0.4 * t0)

    def test_device_slowdown_window_extends_runtime(self):
        t0 = fault_free_time()
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[
            FaultEvent("device_slowdown", 0.2 * t0, 1, duration=0.4 * t0, factor=4.0),
        ]))
        result = runner.run(iterations=6)
        assert result.total_time > 1.05 * t0
        # The window was reverted: the device is back at full speed.
        assert cluster.devices[1].slowdown == 1.0
        assert injector.log[0].reverted_at == pytest.approx(0.6 * t0)

    def test_device_crash_window_stalls_then_resumes(self):
        t0 = fault_free_time()
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[
            FaultEvent("device_crash", 0.4 * t0, 1, duration=0.3 * t0),
        ]))
        result = runner.run(iterations=6)
        # All work completes after the restart, one outage window later.
        assert runner.iterations_completed == [6, 6, 6]
        assert result.total_time == pytest.approx(t0 + 0.3 * t0, rel=0.15)
        assert not cluster.devices[1].failed

    def test_link_partition_heals(self):
        t0 = fault_free_time()
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[
            FaultEvent("link_partition", 0.4 * t0, (0, 1), duration=0.3 * t0),
        ]))
        result = runner.run(iterations=6)
        assert runner.iterations_completed == [6, 6, 6]
        assert result.total_time > t0
        assert not cluster.link(0, 1).partitioned

    def test_fault_spans_recorded_but_not_in_decomposition(self):
        t0 = fault_free_time()
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner, trace=runner.trace)
        injector.install(FaultPlan(events=[
            FaultEvent("device_slowdown", 0.2 * t0, 1, duration=0.3 * t0, factor=2.0),
            FaultEvent("pipeline_crash", 0.5 * t0, 0),
        ]))
        runner.run(iterations=6)
        injector.finalize()
        fault_spans = runner.trace.fault_spans()
        assert len(fault_spans) == 2
        assert all(s.kind is SpanKind.FAULT for s in fault_spans)
        # Equation-1 accounting models healthy execution only.
        assert set(runner.trace.time_decomposition(1)) == {"gpu", "com", "bub", "sync"}

    def test_pipeline_crash_without_runner_rejected(self):
        sim, cluster, _ = make_setup()
        injector = FaultInjector(sim, cluster)
        with pytest.raises(ValueError, match="runner"):
            injector.install(FaultPlan(events=[FaultEvent("pipeline_crash", 1.0, 0)]))

    def test_crashed_pipeline_frees_its_stash(self):
        t0 = fault_free_time()
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[FaultEvent("pipeline_crash", 0.4 * t0, 1)]))
        runner.run(iterations=6)
        # All activation memory was returned by survivors AND the victim.
        for device in cluster.devices:
            assert device.memory.by_tag.get("activations", 0) == 0
