"""The run-store fuzzer axis: configs, contract audits, CLI wiring."""

import dataclasses

import pytest

from repro.verify import (
    run_tune_fuzz,
    run_tune_fuzz_case,
    tune_fuzz_configs,
)
from repro.verify.fuzz_tune import _MUTATIONS


def test_configs_are_deterministic_and_rotate_mutations():
    a = tune_fuzz_configs(10, seed=0)
    b = tune_fuzz_configs(10, seed=0)
    assert a == b
    assert [c.mutation for c in a] == list(_MUTATIONS) * 2
    assert tune_fuzz_configs(10, seed=1) != a
    for cfg in a:
        if cfg.mutation == "empty":
            assert cfg.num_records == 0
        else:
            assert 1 <= cfg.num_records <= 12


def test_fuzz_cases_hold_all_contracts():
    """One full rotation of every mutation kind: crash-freedom, fallback
    correctness, OOM vetoes, round-trips, and determinism all clean."""
    results = run_tune_fuzz(10, seed=0)
    assert len(results) == 10
    for r in results:
        assert r.ok, f"{r.config.describe()}: {r.problems}"
    # the batch must exercise both sides of the fallback
    assert any(r.residual_applied for r in results), "no store residual-ranked"
    assert any(
        not r.residual_applied for r in results
    ), "no store fell back to analytic"


def test_empty_mutation_reports_analytic_fallback():
    cfg = next(c for c in tune_fuzz_configs(5, seed=0) if c.mutation == "empty")
    result = run_tune_fuzz_case(cfg)
    assert result.ok, result.problems
    assert result.records_loaded == 0
    assert not result.residual_applied


def test_oom_mutation_still_decides():
    """A store of OOM-flagged records must veto without ever crashing or
    leaving the grid."""
    cfg = next(
        c for c in tune_fuzz_configs(5, seed=0) if c.mutation == "oom-flagged"
    )
    result = run_tune_fuzz_case(cfg)
    assert result.ok, result.problems
    assert result.records_loaded > 0


def test_detects_order_dependent_residual_fit(monkeypatch):
    """The determinism audit is live: make the fit order-sensitive and the
    fuzzer must flag it (this is the bug class the audit exists for)."""
    from repro.tune.residual import ResidualModel

    true_fit = ResidualModel.fit.__func__
    calls = {"n": 0}

    def skewed_fit(cls, records, context=None, **kwargs):
        model = true_fit(cls, records, context=context, **kwargs)
        calls["n"] += 1
        if calls["n"] % 2 == 0:  # every second fit drifts
            return dataclasses.replace(
                model,
                exact={k: v * (1.0 + 1e-9) for k, v in model.exact.items()},
            )
        return model

    monkeypatch.setattr(ResidualModel, "fit", classmethod(skewed_fit))
    flagged = []
    for cfg in tune_fuzz_configs(10, seed=0):
        if cfg.mutation == "empty":
            continue
        result = run_tune_fuzz_case(cfg)
        flagged.extend(result.problems)
        if flagged:
            break
    assert flagged, "fuzzer missed an order-dependent residual fit"


def test_cli_verify_runs_the_tune_axis(capsys):
    from repro.cli import main

    code = main(["verify", "--quick", "--fuzz", "0", "--sched-fuzz", "0",
                 "--tune-fuzz", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "tune-fuzz: 5 stores" in out


def test_cli_verify_tune_axis_can_be_disabled(capsys):
    from repro.cli import main

    code = main(["verify", "--quick", "--fuzz", "0", "--sched-fuzz", "0",
                 "--tune-fuzz", "0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "tune-fuzz" not in out
