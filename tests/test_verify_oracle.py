"""Differential oracle: the pipelined numeric trainer must match a
sequential single-process trainer with explicit weight-version replay —
gradients, post-step weights, optimizer state and the post-averaging
reference — for every registered schedule."""

import numpy as np
import pytest

from repro.core.elastic import ElasticAveragingFramework
from repro.verify.oracle import (
    VERIFIED_SCHEDULES,
    ElasticOracle,
    differential_check,
    make_toy_model,
    toy_batch,
)

TOL = 1e-9


@pytest.mark.parametrize("name", sorted(VERIFIED_SCHEDULES))
@pytest.mark.parametrize("num_stages,num_micro", [(2, 2), (2, 5), (3, 4), (4, 8)])
def test_single_pipeline_matches_oracle(name, num_stages, num_micro):
    report = differential_check(name, num_stages, num_micro, num_pipelines=1, seed=3)
    assert report.ok(TOL), str(report)


@pytest.mark.parametrize("name", sorted(VERIFIED_SCHEDULES))
@pytest.mark.parametrize("num_pipelines", [2, 3])
def test_elastic_pipelines_match_oracle(name, num_pipelines):
    report = differential_check(
        name, 3, 4, num_pipelines=num_pipelines, iterations=3, seed=5
    )
    assert report.ok(TOL), str(report)


@pytest.mark.parametrize("optimizer", ["sgd", "adam"])
def test_optimizer_state_matches(optimizer):
    report = differential_check(
        "advance_fp", 3, 6, num_pipelines=2, optimizer=optimizer, seed=11
    )
    assert report.max_opt_state_delta <= TOL, str(report)


def test_pipedream_staleness_is_reproduced():
    # PipeDream diverges from the synchronous trajectory (stale weights),
    # yet the version-replay oracle still matches it exactly — the pair
    # of assertions that gives the differential test its teeth.
    stale = differential_check("pipedream", 4, 6, num_pipelines=1, seed=7)
    assert stale.ok(TOL), str(stale)
    sync = differential_check("afab", 4, 6, num_pipelines=1, seed=7)
    assert sync.ok(TOL), str(sync)


def test_loss_agrees_bitwise():
    report = differential_check("1f1b", 3, 5, num_pipelines=1, seed=13)
    assert report.max_loss_delta == 0.0


def test_report_worst_and_str():
    report = differential_check("afab", 2, 2, num_pipelines=1, seed=1)
    assert report.worst() <= TOL
    text = str(report)
    assert "afab" in text and "K=2" in text


# ---------------------------------------------------------------------- #
# the independent elastic oracle against the real framework


def _models(n, seed=0):
    return [make_toy_model(2, dim=4, seed=seed + i) for i in range(n)]


@pytest.mark.parametrize("queue_delay", [0, 1, 2])
@pytest.mark.parametrize("normalization", ["mean", "sum"])
def test_elastic_oracle_matches_framework(queue_delay, normalization):
    fw_models = _models(3, seed=21)
    or_models = _models(3, seed=21)
    framework = ElasticAveragingFramework(
        fw_models, queue_delay=queue_delay, update_normalization=normalization
    )
    oracle = ElasticOracle(
        or_models, queue_delay=queue_delay, update_normalization=normalization
    )
    rng = np.random.default_rng(9)
    for _ in range(4):
        for i in range(3):
            step = {
                name: rng.standard_normal(p.shape) * 0.01
                for name, p in fw_models[i].named_parameters()
            }
            before = framework.capture(i)
            o_before = oracle.capture(i)
            for name, p in fw_models[i].named_parameters():
                p.data = p.data + step[name]
            for name, p in or_models[i].named_parameters():
                p.data = p.data + step[name]
            framework.commit(i, before)
            oracle.commit(i, o_before)
        framework.end_iteration()
        oracle.end_iteration()
    for name in framework.reference:
        np.testing.assert_array_equal(framework.reference[name], oracle.reference[name])
    for a, b in zip(fw_models, or_models):
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


def test_toy_batch_deterministic():
    a = toy_batch(3, 2, seed=5)
    b = toy_batch(3, 2, seed=5)
    for mba, mbb in zip(a, b):
        np.testing.assert_array_equal(mba["x"], mbb["x"])
        np.testing.assert_array_equal(mba["y"], mbb["y"])
    c = toy_batch(3, 2, seed=6)
    assert not np.array_equal(a[0]["x"], c[0]["x"])
