"""Empty-store bitwise-identity: the learned layer must be invisible
until records exist.

With ``history=None`` or an empty :class:`~repro.tune.store.RunStore`,
every consumer — ``plan_for_spec``, ``ProfilingTuner``, the sched
admission planner (and through it the whole scheduler event log and the
``sched_smoke.txt`` golden), and RetunePlan — must produce *byte-equal*
results to the pre-learned code paths.  These tests difference each
consumer against its no-history invocation and the checked-in golden.
"""

import dataclasses

import pytest

from repro.core.simcfg import calibration_for
from repro.core.tuner import ProfilingTuner, plan_for_spec
from repro.sched import (
    SchedVerdict,
    build_scenario,
    ClusterScheduler,
    JobPlanner,
    crosscheck_result,
    render_report,
)
from repro.tune.store import RunStore
from tests.test_core_predictor import make_profiler
from tests.test_sched_golden import GOLDEN, render_sched_smoke


class TestPlanForSpec:
    def _args(self, variant=None):
        cal = calibration_for("awd")
        return cal.layer_costs(), cal.cluster_spec(variant)

    def test_uniform_identical(self):
        costs, spec = self._args()
        base = plan_for_spec(costs, spec)
        for history in (None, RunStore()):
            part, perm = plan_for_spec(costs, spec, history=history)
            assert part.boundaries == base[0].boundaries
            assert perm == base[1]

    def test_hetero_identical(self):
        costs, spec = self._args("mixed-gen")
        caps = list(spec.memory_vector())
        base = plan_for_spec(costs, spec, memory_caps=caps)
        for history in (None, RunStore()):
            part, perm = plan_for_spec(costs, spec, memory_caps=caps, history=history)
            assert part.boundaries == base[0].boundaries
            assert perm == base[1]

    def test_empty_path_store_identical(self, tmp_path):
        costs, spec = self._args("straggler-node")
        base = plan_for_spec(costs, spec)
        part, perm = plan_for_spec(costs, spec, history=tmp_path / "none.jsonl")
        assert part.boundaries == base[0].boundaries
        assert perm == base[1]


class TestProfilingTuner:
    def test_empty_store_outcome_identical(self):
        limit = 64 * 2**30
        base = ProfilingTuner(make_profiler(), limit).tune(
            m_candidates=[1, 2, 4], n_candidates=[1, 2]
        )
        for history in (None, RunStore()):
            outcome = ProfilingTuner(
                make_profiler(), limit, history=history, workload="awd"
            ).tune(m_candidates=[1, 2, 4], n_candidates=[1, 2])
            assert (outcome.m, outcome.n) == (base.m, base.n)
            assert outcome.measured_batch_time == base.measured_batch_time
            assert outcome.tuning_cost == base.tuning_cost
            assert outcome.details == base.details
            assert outcome.records_consulted == 0
            assert not outcome.residual_applied


class TestSchedAdmission:
    def test_chain_plans_identical(self):
        spec, _jobs = build_scenario("smoke", 0)
        base = JobPlanner(spec)
        learned = JobPlanner(spec, history=RunStore())
        devices = tuple(range(4))
        a = base.plan_chain("awd", 4, 4, devices, with_reference=True)
        b = learned.plan_chain("awd", 4, 4, devices, with_reference=True)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_event_logs_identical(self):
        spec, jobs = build_scenario("smoke", 0)
        base = ClusterScheduler(spec, jobs, "fifo", scenario="smoke", seed=0)
        base_result = base.run()
        spec2, jobs2 = build_scenario("smoke", 0)
        learned = ClusterScheduler(
            spec2, jobs2, "fifo", scenario="smoke", seed=0, history=RunStore()
        )
        learned_result = learned.run()
        assert base.log == learned.log
        assert base_result.makespan == learned_result.makespan

    def test_sched_smoke_golden_identical_with_empty_store(self, monkeypatch):
        """The full golden render, with every scheduler run handed an
        empty store, must equal the checked-in byte-pinned artifact."""
        import repro.sched as sched

        original = sched.ClusterScheduler

        class StoreInjected(original):
            def __init__(self, *args, **kwargs):
                kwargs.setdefault("history", RunStore())
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(sched, "ClusterScheduler", StoreInjected)
        fifo = sched.run_scenario("smoke", "fifo", seed=0)
        fair = sched.run_scenario("smoke", "fair", seed=0)
        verdict = SchedVerdict(
            baseline=fifo,
            candidate=fair,
            crosschecks=crosscheck_result(fair, seed=0),
        )
        fresh = render_report(verdict).rstrip("\n") + "\n"
        assert fresh == GOLDEN.read_text()


class TestRetunePlan:
    def test_details_dict_identical_without_history(self):
        from repro.resilience.detector import FailureReport
        from repro.resilience.recovery import RetunePlan

        profiler = make_profiler()
        report = FailureReport(
            kind="straggler", target=1, detected_at=1.0, severity=2.0
        )
        base = RetunePlan(profiler, 64 * 2**30, m_candidates=[1, 2], n_candidates=[1])
        base_details = base.apply(None, report)
        again = RetunePlan(
            profiler, 64 * 2**30, m_candidates=[1, 2], n_candidates=[1]
        ).apply(None, report)
        assert base_details == again
        assert "records_consulted" not in base_details

    def test_empty_store_adds_audit_keys_but_same_decision(self):
        from repro.resilience.detector import FailureReport
        from repro.resilience.recovery import RetunePlan

        profiler = make_profiler()
        report = FailureReport(
            kind="straggler", target=1, detected_at=1.0, severity=2.0
        )
        base = RetunePlan(
            profiler, 64 * 2**30, m_candidates=[1, 2], n_candidates=[1]
        ).apply(None, report)
        learned = RetunePlan(
            profiler,
            64 * 2**30,
            m_candidates=[1, 2],
            n_candidates=[1],
            history=RunStore(),
            workload="awd",
        ).apply(None, report)
        assert learned["records_consulted"] == 0
        assert learned["residual_applied"] is False
        for key, value in base.items():
            assert learned[key] == value


class TestSchedCorrectionActive:
    """The flip side of the identity suite: with a record matching the
    chain's (workload, K), admission's Eq.-1 service time scales by the
    exact measured/predicted ratio (footprints stay analytic)."""

    def test_matching_record_scales_service_time(self):
        from repro.tune.store import TuneRecord

        spec, jobs = build_scenario("smoke", 0)
        family, k, m = "awd", 2, 8  # a shape the smoke scenario admits
        devices = tuple(range(k))
        base = JobPlanner(spec).plan_chain(family, k, m, devices,
                                           with_reference=False)
        record = TuneRecord(
            context="x" * 16, cluster="y" * 16, workload=family,
            schedule="advance_fp(2)", k=k, m=m, n=1,
            predicted_batch_time=base.batch_time,
            predicted_peak_bytes=1.0,
            measured_batch_time=base.batch_time * 1.5,
            measured_peak_bytes=1.0,
        )
        learned = JobPlanner(
            spec, history=RunStore.from_records([record])
        ).plan_chain(family, k, m, devices, with_reference=False)
        assert learned.batch_time == pytest.approx(base.batch_time * 1.5)
        assert learned.footprints == base.footprints  # admission stays analytic

    def test_wrong_stage_count_record_is_ignored(self):
        from repro.tune.store import TuneRecord

        spec, jobs = build_scenario("smoke", 0)
        record = TuneRecord(
            context="x" * 16, cluster="y" * 16, workload="awd",
            schedule="advance_fp(2)", k=4, m=8, n=1,
            predicted_batch_time=0.1, predicted_peak_bytes=1.0,
            measured_batch_time=0.15, measured_peak_bytes=1.0,
        )
        base = JobPlanner(spec).plan_chain("awd", 2, 8, (0, 1),
                                           with_reference=False)
        learned = JobPlanner(
            spec, history=RunStore.from_records([record])
        ).plan_chain("awd", 2, 8, (0, 1), with_reference=False)
        assert dataclasses.asdict(learned) == dataclasses.asdict(base)
