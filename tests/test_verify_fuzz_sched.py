"""The job-arrival fuzzer axis: configs, invariant audits, CLI wiring."""

import pytest

from repro.verify import (
    run_sched_fuzz,
    run_sched_fuzz_case,
    sched_fuzz_configs,
)


def test_configs_are_deterministic_and_rotate_policies():
    a = sched_fuzz_configs(9, seed=0)
    b = sched_fuzz_configs(9, seed=0)
    assert a == b
    assert [c.policy for c in a] == ["fifo", "priority", "fair"] * 3
    assert sched_fuzz_configs(9, seed=1) != a
    for cfg in a:
        assert 2 <= cfg.nodes <= 4
        assert 1 <= cfg.gpus_per_node <= 2
        assert 3 <= cfg.num_jobs <= 8
        assert 0.3 <= cfg.mean_interarrival <= 3.0
        assert cfg.memory_regime in ("roomy", "tight", "uneven")


def test_fuzz_cases_hold_all_invariants():
    """Nine seeded clusters across all three policies and memory regimes:
    every invariant audit must come back clean."""
    results = run_sched_fuzz(9, seed=0)
    assert len(results) == 9
    for r in results:
        assert r.ok, f"{r.config.describe()}: {r.problems}"
    # the batch must actually exercise the interesting paths
    assert any(r.jobs_rejected > 0 for r in results), "no tight-memory rejections seen"
    assert any(r.preemptions > 0 for r in results), "no preemptions seen"
    assert any(r.resizes > 0 for r in results), "no elastic resizes seen"


def test_tight_memory_rejections_are_genuine():
    """Find a tight-memory case with rejections; the audit inside
    run_sched_fuzz_case already proves each rejection infeasible — here we
    just pin that the regime produces them at all."""
    for cfg in sched_fuzz_configs(30, seed=0):
        if cfg.memory_regime != "tight":
            continue
        result = run_sched_fuzz_case(cfg)
        assert result.ok, result.problems
        if result.jobs_rejected > 0:
            return
    pytest.fail("no tight-memory config produced a rejection in 30 draws")


def test_cli_verify_runs_the_sched_axis(capsys):
    from repro.cli import main

    code = main(["verify", "--quick", "--fuzz", "0", "--sched-fuzz", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "sched-fuzz: 3 clusters" in out


def test_cli_verify_sched_axis_can_be_disabled(capsys):
    from repro.cli import main

    code = main(["verify", "--quick", "--fuzz", "0", "--sched-fuzz", "0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "sched-fuzz" not in out
