"""Property-based tests (hypothesis) on the autograd engine.

The key invariant: for any composition of ops, analytic gradients match
central finite differences.  We also check structural identities that
must hold for arbitrary shapes (broadcast-reduce duality, reshape
round-trips, linearity of backward).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, gradcheck, softmax, tensor
from repro.tensor.tensor import _unbroadcast

shapes = st.lists(st.integers(1, 4), min_size=1, max_size=3).map(tuple)


def arrays(shape, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape)


@settings(max_examples=40, deadline=None)
@given(shape=shapes, seed=st.integers(0, 10_000))
def test_unbroadcast_inverts_broadcast(shape, seed):
    """Summing a broadcast gradient back must preserve totals."""
    rng = np.random.default_rng(seed)
    big_shape = (3,) + shape
    grad = rng.standard_normal(big_shape)
    reduced = _unbroadcast(grad, shape)
    assert reduced.shape == shape
    assert np.isclose(reduced.sum(), grad.sum())


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 4),
    inner=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_matmul_gradcheck_random_shapes(rows, inner, cols, seed):
    a = tensor(arrays((rows, inner), seed), requires_grad=True, dtype=np.float64)
    b = tensor(arrays((inner, cols), seed + 1), requires_grad=True, dtype=np.float64)
    assert gradcheck(lambda x, y: x @ y, [a, b])


@settings(max_examples=30, deadline=None)
@given(shape=shapes, seed=st.integers(0, 10_000))
def test_elementwise_chain_gradcheck(shape, seed):
    x = tensor(arrays(shape, seed) * 0.5, requires_grad=True, dtype=np.float64)
    assert gradcheck(lambda t: (t * t + t).exp().log(), [x], atol=5e-3)


@settings(max_examples=30, deadline=None)
@given(
    shape=st.lists(st.integers(1, 5), min_size=2, max_size=3).map(tuple),
    seed=st.integers(0, 10_000),
)
def test_softmax_rows_always_sum_to_one(shape, seed):
    x = tensor(arrays(shape, seed) * 10)
    out = softmax(x, axis=-1)
    assert np.allclose(out.data.sum(axis=-1), 1.0, atol=1e-5)
    assert np.all(out.data >= 0)


@settings(max_examples=30, deadline=None)
@given(shape=shapes, seed=st.integers(0, 10_000))
def test_backward_is_linear_in_upstream_gradient(shape, seed):
    """backward(2g) must give exactly twice backward(g)."""

    def run(scale):
        x = tensor(arrays(shape, seed), requires_grad=True, dtype=np.float64)
        out = x * x * 3.0
        out.backward(np.full(shape, scale, dtype=np.float64))
        return x.grad

    assert np.allclose(run(2.0), 2.0 * run(1.0))


@settings(max_examples=30, deadline=None)
@given(
    shape=st.lists(st.integers(1, 6), min_size=2, max_size=2).map(tuple),
    seed=st.integers(0, 10_000),
)
def test_reshape_transpose_roundtrip_gradient_is_identity(shape, seed):
    x = tensor(arrays(shape, seed), requires_grad=True, dtype=np.float64)
    out = x.T.reshape(*shape)
    out.sum().backward()
    assert np.allclose(x.grad, 1.0)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 8),
    c=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_cross_entropy_bounded_below_by_zero(n, c, seed):
    from repro.tensor import cross_entropy

    rng = np.random.default_rng(seed)
    logits = tensor(rng.standard_normal((n, c)) * 3, requires_grad=True, dtype=np.float64)
    targets = rng.integers(0, c, size=n)
    loss = cross_entropy(logits, targets)
    assert loss.item() >= 0.0
    loss.backward()
    # Gradient rows sum to zero (softmax minus one-hot property).
    assert np.allclose(logits.grad.sum(axis=1), 0.0, atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(shape=shapes, seed=st.integers(0, 10_000))
def test_sum_then_backward_gives_ones(shape, seed):
    x = tensor(arrays(shape, seed), requires_grad=True, dtype=np.float64)
    x.sum().backward()
    assert np.allclose(x.grad, np.ones(shape))
