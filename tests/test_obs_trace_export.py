"""Golden regression + structural tests for the Chrome-trace exporter.

The benchmark suite regenerates ``benchmarks/results/obs_trace_fig07.json``
(the Figure-7 worked example — K=2, M=4, AFAB — exported as a Chrome
trace); this test pins it byte-for-byte, exactly like the fig07 timeline
golden.  The structural tests check that the emitted JSON round-trips
through ``json.loads`` and that every complete event carries the Trace
Event Format fields Perfetto needs (``ph``/``ts``/``dur``/``pid``/``tid``).
"""

import json
import pathlib

from repro.obs import TraceExporter
from repro.schedules.base import AFABSchedule
from repro.schedules.executor import PipelineSimRunner, StageCosts
from repro.sim.cluster import ClusterSpec, make_cluster
from repro.sim.events import Simulator
from repro.sim.trace import SpanKind

GOLDEN = (
    pathlib.Path(__file__).parent.parent
    / "benchmarks"
    / "results"
    / "obs_trace_fig07.json"
)


def export_worked_example() -> TraceExporter:
    """The Figure-7 worked example, exactly as the benchmark runs it."""
    K, M = 2, 4
    costs = StageCosts(
        fwd_flops=(4.0e6,) * K,
        act_out_bytes=(4.0e6,) * K,
        stash_bytes=(8.0e6,) * K,
        param_bytes=(1_000_000,) * K,
    )
    sim = Simulator()
    cluster = make_cluster(
        sim, K, spec=ClusterSpec(nodes=2, gpus_per_node=1, memory_bytes=2**31)
    )
    runner = PipelineSimRunner(cluster, AFABSchedule(), costs, num_micro=M, mb_size=8.0)
    result = runner.run(iterations=1)
    assert result.oom is None
    return TraceExporter(result.trace, num_devices=K)


def render_trace_json() -> str:
    return export_worked_example().to_json() + "\n"


def test_trace_artifact_matches_golden():
    assert GOLDEN.exists(), f"golden artifact missing: {GOLDEN}"
    fresh = render_trace_json()
    golden = GOLDEN.read_text()
    assert fresh == golden, (
        "Chrome-trace export drifted from benchmarks/results/obs_trace_fig07.json; "
        "if the change is intentional, regenerate it with "
        "`PYTHONPATH=src python -m pytest benchmarks/test_obs_trace_export.py`"
    )


def test_trace_export_is_deterministic():
    assert render_trace_json() == render_trace_json()


def test_chrome_trace_round_trips_and_is_well_formed():
    exporter = export_worked_example()
    data = json.loads(exporter.to_json())  # must round-trip
    assert data["displayTimeUnit"] == "ms"
    events = data["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) == len(exporter.trace.spans)
    # One process_name per device plus thread_name lanes.
    assert sum(e["name"] == "process_name" for e in meta) == exporter.num_devices
    assert all(e["ph"] in ("X", "M") for e in events)
    kinds = {k.value for k in SpanKind}
    for e in complete:
        assert set(e) >= {"ph", "ts", "dur", "pid", "tid", "name", "cat", "args"}
        assert e["cat"] in kinds
        assert e["dur"] >= 0
        assert e["ts"] >= 0
        assert 0 <= e["pid"] < exporter.num_devices
        assert e["tid"] >= 0
    # Compute spans carry their schedule identity into args.
    fwd = [e for e in complete if e["cat"] == "fwd"]
    assert fwd and all(
        {"pipeline", "stage", "micro"} <= set(e["args"]) for e in fwd
    )


def test_exporter_infers_device_count():
    exporter = export_worked_example()
    inferred = TraceExporter(exporter.trace)
    assert inferred.num_devices == exporter.num_devices
    assert inferred.to_json() == exporter.to_json()


def test_device_summary_mentions_every_device_and_kind():
    exporter = export_worked_example()
    text = exporter.device_summary()
    for dev in range(exporter.num_devices):
        assert f"GPU {dev}" in text
    for kind in ("fwd", "bwd", "comm"):
        assert kind in text


def test_write_emits_loadable_file(tmp_path):
    exporter = export_worked_example()
    path = tmp_path / "trace.json"
    exporter.write(path)
    assert json.loads(path.read_text())["traceEvents"]
