"""Greedy decoding for GNMT."""

import numpy as np
import pytest

from repro.data import TranslationConfig, bleu_like, make_translation_dataset
from repro.data.vocab import EOS, PAD
from repro.models import build_bert, BertConfig
from repro.models.gnmt import GNMTConfig, build_gnmt
from repro.models.inference import greedy_decode
from repro.optim import Adam

CFG = GNMTConfig(vocab_size=16, embed_dim=8, hidden_dim=12, encoder_layers=2,
                 decoder_layers=2, src_len=7, tgt_len=7, dropout=0.0)


def small_data():
    dcfg = TranslationConfig(num_pairs=256, vocab_size=12, seq_len=5, seed=4)
    train, valid, _ = make_translation_dataset(dcfg)
    return train, valid


class TestGreedyDecode:
    def test_output_shape_and_token_range(self):
        model = build_gnmt(CFG)
        src = np.random.default_rng(0).integers(4, 16, size=(3, 7))
        out = greedy_decode(model, src, max_len=7)
        assert out.shape[0] == 3
        assert out.shape[1] <= 7
        assert out.min() >= 0 and out.max() < CFG.vocab_size

    def test_tokens_after_eos_are_padding(self):
        model = build_gnmt(CFG)
        src = np.random.default_rng(1).integers(4, 16, size=(4, 7))
        out = greedy_decode(model, src, max_len=7)
        for row in out:
            hits = np.where(row == EOS)[0]
            if len(hits):
                assert np.all(row[hits[0] + 1:] == PAD)

    def test_deterministic(self):
        model = build_gnmt(CFG)
        src = np.random.default_rng(2).integers(4, 16, size=(2, 7))
        a = greedy_decode(model, src)
        b = greedy_decode(model, src)
        assert np.array_equal(a, b)

    def test_rejects_non_gnmt_models(self):
        bert = build_bert(BertConfig(vocab_size=16, d_model=8, num_heads=2, num_blocks=2,
                                     d_ff=16, seq_len=9, num_classes=2))
        with pytest.raises(TypeError):
            greedy_decode(bert, np.zeros((1, 9), dtype=np.int64))

    def test_bleu_improves_with_training(self):
        """The deployment metric must track training progress."""
        train, valid = small_data()
        model = build_gnmt(CFG).seed(3)
        src = valid.arrays["src"]
        refs = [
            [int(t) for t in row[: int(np.where(row == EOS)[0][0]) if len(np.where(row == EOS)[0]) else len(row)]]
            for row in valid.arrays["tgt_out"]
        ]

        def score():
            hyps = [list(map(int, row)) for row in greedy_decode(model, src, max_len=7)]
            return bleu_like(hyps, refs)

        before = score()
        opt = Adam(model.parameters(), lr=3e-3)
        for _ in range(40):
            idx = np.random.default_rng(5).choice(len(train), 64, replace=False)
            batch = {k: v[idx] for k, v in train.arrays.items()}
            model.zero_grad()
            model.loss(batch).backward()
            opt.step()
        after = score()
        assert after > before + 1.0


class TestBeamSearch:
    def test_beam_one_matches_greedy_tokens(self):
        from repro.models.inference import beam_search_decode

        model = build_gnmt(CFG).seed(5)
        src = np.random.default_rng(6).integers(4, 16, size=(3, 7))
        greedy = greedy_decode(model, src, max_len=7)
        beam1 = beam_search_decode(model, src, beam_width=1, max_len=7, length_penalty=0.0)
        # Pad greedy to the same width for comparison.
        padded = np.full_like(beam1, 0)
        padded[:, : greedy.shape[1]] = greedy
        assert np.array_equal(padded, beam1)

    def test_wider_beam_never_scores_worse(self):
        """Beam search maximizes the length-normalized log-prob: a wider
        beam's chosen hypothesis can't score below greedy's."""
        from repro.models.inference import beam_search_decode
        from repro.tensor import no_grad

        model = build_gnmt(CFG).seed(7)
        src = np.random.default_rng(8).integers(4, 16, size=(4, 7))

        def score(tokens_row):
            from repro.data.vocab import BOS, PAD
            toks = [int(t) for t in tokens_row if t != PAD]
            if not toks:
                return -np.inf
            prefix = np.array([[BOS, *toks[:-1]]], dtype=np.int64)
            with no_grad():
                bundle = {"src": src[:1], "tgt_in": None, "tgt_out": None}
                enc_layers = [l for l in model.layers[:-1]]
                b = {"src": src[:1], "tgt_in": prefix, "tgt_out": None}
                out = dict(b)
                for layer in model.layers[:-1]:
                    out = layer(out)
                logits = out["logits"].data[0]
            total = 0.0
            for t, tok in enumerate(toks):
                row = logits[t] - logits[t].max()
                total += float(row[tok] - np.log(np.exp(row).sum()))
            return total / ((5 + len(toks)) / 6.0) ** 0.6

        greedy = greedy_decode(model, src[:1], max_len=7)
        beam = beam_search_decode(model, src[:1], beam_width=4, max_len=7)
        assert score(beam[0]) >= score(greedy[0]) - 1e-6

    def test_invalid_width(self):
        from repro.models.inference import beam_search_decode

        with pytest.raises(ValueError):
            beam_search_decode(build_gnmt(CFG), np.zeros((1, 7), dtype=np.int64), beam_width=0)

    def test_padding_after_eos(self):
        from repro.data.vocab import EOS, PAD
        from repro.models.inference import beam_search_decode

        model = build_gnmt(CFG).seed(9)
        src = np.random.default_rng(10).integers(4, 16, size=(4, 7))
        out = beam_search_decode(model, src, beam_width=3, max_len=7)
        for row in out:
            hits = np.where(row == EOS)[0]
            if len(hits):
                assert np.all(row[hits[0] + 1:] == PAD)
