"""Checkpoint round-trips: a resumed run must continue bit-identically."""

import numpy as np
import pytest

from repro.core.checkpoint import load_trainer, save_trainer
from repro.core.trainer import AvgPipeTrainer

from tests.test_core_trainers import tiny_awd_spec


def _step_epochs(trainer, epochs):
    for _ in range(epochs):
        trainer.max_epochs = 1
        trainer.train()


class TestCheckpointRoundTrip:
    def test_weights_and_reference_restored(self, tmp_path):
        spec = tiny_awd_spec()
        t1 = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=2)
        t1.train()
        path = tmp_path / "ckpt.npz"
        save_trainer(t1, path)

        t2 = AvgPipeTrainer(spec, seed=99, max_epochs=1, num_pipelines=2)
        load_trainer(t2, path)
        for m1, m2 in zip(t1.models, t2.models):
            s1, s2 = m1.state_dict(), m2.state_dict()
            assert all(np.array_equal(s1[k], s2[k]) for k in s1)
        for k in t1.framework.reference:
            assert np.array_equal(t1.framework.reference[k], t2.framework.reference[k])

    def test_resumed_training_matches_uninterrupted(self, tmp_path):
        spec = tiny_awd_spec()
        # Uninterrupted: 2 epochs.
        full = AvgPipeTrainer(spec, seed=0, max_epochs=2, num_pipelines=2)
        full.train()

        # Interrupted after 1 epoch, checkpointed, resumed for 1 more.
        first = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=2)
        first.train()
        path = tmp_path / "ckpt.npz"
        save_trainer(first, path)
        resumed = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=2)
        load_trainer(resumed, path)
        resumed.train()

        # Note: the data loader reshuffles per epoch via its own counter,
        # which both paths advance identically (AWD loader is unshuffled),
        # so weights must match exactly.
        sf, sr = full.models[0].state_dict(), resumed.models[0].state_dict()
        for k in sf:
            assert np.allclose(sf[k], sr[k], atol=1e-6), k

    def test_optimizer_state_restored(self, tmp_path):
        spec = tiny_awd_spec()
        t1 = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=2)
        t1.train()
        path = tmp_path / "ckpt.npz"
        save_trainer(t1, path)
        t2 = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=2)
        load_trainer(t2, path)
        s1, s2 = t1.optimizers[0].state_dict(), t2.optimizers[0].state_dict()
        assert s1["lr"] == s2["lr"]
        assert set(s1["state"]) == set(s2["state"])
        for slot in s1["state"]:
            for key in s1["state"][slot]:
                v1, v2 = s1["state"][slot][key], s2["state"][slot][key]
                assert np.allclose(np.asarray(v1), np.asarray(v2))

    def test_pipeline_count_mismatch_rejected(self, tmp_path):
        spec = tiny_awd_spec()
        t1 = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=2)
        path = tmp_path / "ckpt.npz"
        save_trainer(t1, path)
        t3 = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=3)
        with pytest.raises(ValueError):
            load_trainer(t3, path)


class TestElasticResizeRoundTrip:
    """The recovery path: a checkpoint taken after an eviction restarts
    into a freshly-built larger trainer (`allow_resize=True` shrinks it),
    and the resumed run continues bit-identically."""

    def test_resume_after_eviction_is_bit_identical(self, tmp_path):
        spec = tiny_awd_spec()
        # Reference trajectory: 3 pipelines, evict one after the first
        # epoch, checkpoint, then train one more epoch at N=2.
        full = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=3)
        full.train()
        full.evict_pipeline(2)
        path = tmp_path / "ckpt.npz"
        save_trainer(full, path)
        _step_epochs(full, 1)

        # Recovery: a freshly-built 3-pipeline trainer shrinks to the
        # checkpoint's N=2 on load and must continue identically.
        resumed = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=3)
        load_trainer(resumed, path, allow_resize=True)
        assert resumed.num_pipelines == 2
        assert resumed.framework.alpha == full.framework.alpha
        resumed.train()

        for mf, mr in zip(full.models, resumed.models):
            sf, sr = mf.state_dict(), mr.state_dict()
            for k in sf:
                assert np.array_equal(sf[k], sr[k]), k
        for k in full.framework.reference:
            assert np.array_equal(
                full.framework.reference[k], resumed.framework.reference[k]
            ), k

    def test_growth_rejected_even_with_allow_resize(self, tmp_path):
        spec = tiny_awd_spec()
        t1 = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=3)
        path = tmp_path / "ckpt.npz"
        save_trainer(t1, path)
        t2 = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=2)
        with pytest.raises(ValueError):
            load_trainer(t2, path, allow_resize=True)

    def test_rng_streams_round_trip(self, tmp_path):
        from repro.core.checkpoint import _model_rng_states

        spec = tiny_awd_spec()
        t1 = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=2)
        t1.train()
        path = tmp_path / "ckpt.npz"
        save_trainer(t1, path)
        t2 = AvgPipeTrainer(spec, seed=99, max_epochs=1, num_pipelines=2)
        load_trainer(t2, path)
        for m1, m2 in zip(t1.models, t2.models):
            assert _model_rng_states(m1) == _model_rng_states(m2)
