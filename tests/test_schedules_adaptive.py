"""Algorithm 1: the adaptive advance-forward-propagation controller."""

import pytest

from repro.schedules import AdaptiveAdvanceController


def controller(**kwargs):
    defaults = dict(num_micro=16, memory_limit_bytes=1000.0)
    defaults.update(kwargs)
    return AdaptiveAdvanceController(**defaults)


class TestObserve:
    def test_grows_while_faster_and_within_memory(self):
        ctl = controller()
        assert ctl.observe(10.0, 100.0) == 1
        assert ctl.observe(9.0, 150.0) == 2
        assert ctl.observe(8.0, 200.0) == 3

    def test_stops_and_backs_off_when_no_longer_faster(self):
        ctl = controller()
        ctl.observe(10.0, 100.0)  # advance 0 -> 1
        ctl.observe(9.0, 150.0)  # 1 -> 2
        result = ctl.observe(9.0, 200.0)  # not faster: back to 1, stop
        assert result == 1
        assert ctl.stopped

    def test_stops_and_rolls_back_at_memory_limit(self):
        ctl = controller(memory_limit_bytes=120.0)
        ctl.observe(10.0, 100.0)  # 0 -> 1 (mem ok)
        result = ctl.observe(9.0, 130.0)  # faster but over limit -> roll back
        assert ctl.stopped
        assert result == 0  # never settle on an over-budget advance

    def test_capped_at_num_micro(self):
        ctl = controller(num_micro=2)
        ctl.observe(10.0, 1.0)
        ctl.observe(9.0, 1.0)
        result = ctl.observe(8.0, 1.0)
        assert result <= 2
        assert ctl.stopped

    def test_threshold_filters_noise(self):
        ctl = controller(improvement_threshold=0.05)
        ctl.observe(10.0, 1.0)
        result = ctl.observe(9.9, 1.0)  # only 1% faster: treated as flat
        assert ctl.stopped
        assert result == 0

    def test_observations_after_stop_are_inert(self):
        ctl = controller()
        ctl.observe(10.0, 1.0)
        ctl.observe(10.0, 1.0)  # stops
        frozen = ctl.advance
        assert ctl.observe(1.0, 1.0) == frozen


class TestTuneLoop:
    def test_converges_to_knee_of_synthetic_curve(self):
        """Synthetic response: time improves until advance 5, then flat."""

        def measure(adv):
            return (max(10.0 - adv, 5.0), 50.0 * (adv + 1))

        ctl = controller()
        settled = ctl.tune(measure)
        assert settled in (4, 5)

    def test_degenerates_to_1f1b_when_nothing_helps(self):
        ctl = controller()
        settled = ctl.tune(lambda adv: (10.0, 10.0))
        assert settled == 0

    def test_degenerates_toward_afab_when_memory_is_free(self):
        """Monotone improvement all the way: Algorithm 1 should push
        advance to the AFAB end (num_micro)."""
        ctl = controller(num_micro=8)
        settled = ctl.tune(lambda adv: (10.0 - adv, 1.0))
        assert settled == 8

    def test_history_recorded(self):
        ctl = controller()
        ctl.tune(lambda adv: (10.0 - adv * 0.5 if adv < 3 else 9.0, 1.0))
        assert len(ctl.history) >= 3
        assert ctl.history[0][0] == 0  # started at 1F1B


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdaptiveAdvanceController(num_micro=0, memory_limit_bytes=1.0)
        with pytest.raises(ValueError):
            AdaptiveAdvanceController(num_micro=4, memory_limit_bytes=0.0)
