"""Property tests for the metric registry (hypothesis, derandomized).

Pins the registry's documented contracts: counters are monotone and
order-faithful, histogram merge is commutative (exact) and associative
(exact on counts, float-rounding on ``sum``), and quantile estimates lie
within one bucket width of the true empirical quantile.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import Counter, Gauge, Histogram, MetricRegistry

#: linear edges, width 0.5, covering the sampled value range [0, 100]:
#: every finite bucket — and the overflow bucket, since values stop at
#: 100 and the last edge is 99.5 — is at most 0.5 wide.
BOUNDS = tuple(0.5 * i for i in range(1, 200))
BUCKET_WIDTH = 0.5

values = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32)
value_lists = st.lists(values, max_size=60)


def fill(samples) -> Histogram:
    h = Histogram(BOUNDS)
    for v in samples:
        h.observe(v)
    return h


def assert_hist_equal(a: Histogram, b: Histogram, sum_exact: bool = True) -> None:
    assert a.bucket_counts == b.bucket_counts
    assert a.count == b.count
    assert a.min == b.min and a.max == b.max
    if sum_exact:
        assert a.sum == b.sum
    else:
        assert a.sum == pytest.approx(b.sum, rel=1e-12, abs=1e-12)


# --------------------------------------------------------------------- #
# counters


@given(st.lists(st.floats(min_value=0.0, max_value=1e9, allow_nan=False), max_size=50))
def test_counter_is_monotone_and_order_faithful(amounts):
    c = Counter()
    running = 0.0
    for a in amounts:
        before = c.value
        c.inc(a)
        assert c.value >= before  # monotone under non-negative increments
        running += a  # same additions, same order => bitwise equal
        assert c.value == running
    assert c.updates == len(amounts)


@given(st.floats(max_value=-1e-12, min_value=-1e9, allow_nan=False))
def test_counter_rejects_negative_increments(amount):
    c = Counter()
    with pytest.raises(ValueError, match=">= 0"):
        c.inc(amount)
    assert c.value == 0.0


# --------------------------------------------------------------------- #
# histogram merge


@given(value_lists, value_lists)
def test_merge_is_commutative(xs, ys):
    a, b = fill(xs), fill(ys)
    assert_hist_equal(a.merge(b), b.merge(a))


@given(value_lists, value_lists, value_lists)
def test_merge_is_associative(xs, ys, zs):
    a, b, c = fill(xs), fill(ys), fill(zs)
    # counts/min/max associate exactly; float addition on ``sum`` only
    # approximately ((a+b)+c vs a+(b+c) rounding).
    assert_hist_equal(a.merge(b).merge(c), a.merge(b.merge(c)), sum_exact=False)


@given(value_lists, value_lists)
def test_merge_equals_observing_the_concatenation(xs, ys):
    merged = fill(xs).merge(fill(ys))
    combined = fill(xs + ys)
    assert_hist_equal(merged, combined, sum_exact=False)


def test_merge_rejects_mismatched_buckets():
    with pytest.raises(ValueError, match="different buckets"):
        Histogram((1.0, 2.0)).merge(Histogram((1.0, 3.0)))


# --------------------------------------------------------------------- #
# quantiles


@given(
    st.lists(values, min_size=1, max_size=80),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_quantile_within_one_bucket_width_of_truth(samples, q):
    h = fill(samples)
    estimate = h.quantile(q)
    rank = max(1, math.ceil(q * len(samples)))  # the estimator's rank
    true = sorted(samples)[rank - 1]
    # Estimate and true order statistic share a bucket, so the error is
    # bounded by that bucket's width.
    assert abs(estimate - true) <= BUCKET_WIDTH + 1e-9


@given(st.lists(values, min_size=1, max_size=80))
def test_quantile_is_monotone_in_q(samples):
    h = fill(samples)
    qs = [0.0, 0.25, 0.5, 0.75, 0.95, 1.0]
    estimates = [h.quantile(q) for q in qs]
    assert all(a <= b + 1e-12 for a, b in zip(estimates, estimates[1:]))


def test_quantile_validates_inputs():
    h = Histogram((1.0,))
    assert math.isnan(h.quantile(0.5))  # empty
    with pytest.raises(ValueError, match="quantile"):
        h.quantile(1.5)


@given(st.lists(values, min_size=1, max_size=80))
def test_summary_agrees_with_numpy_exact_stats(samples):
    h = fill(samples)
    s = h.summary()
    assert s["count"] == len(samples)
    assert s["min"] == min(samples) and s["max"] == max(samples)
    assert s["mean"] == pytest.approx(float(np.mean(np.asarray(samples, dtype=float))))


# --------------------------------------------------------------------- #
# registry semantics


def test_label_order_is_canonicalized():
    reg = MetricRegistry()
    assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)
    assert len(reg) == 1


def test_kind_mismatch_raises():
    reg = MetricRegistry()
    reg.counter("x", device=0)
    with pytest.raises(TypeError, match="already registered"):
        reg.gauge("x", device=0)


def test_gauge_tracks_watermarks():
    g = Gauge()
    for v in (3.0, -1.0, 2.0):
        g.set(v)
    assert (g.value, g.max_value, g.min_value, g.updates) == (2.0, 3.0, -1.0, 3)
