"""Chain planner + admission control, and the workload generator."""

import pytest

from repro.sim.cluster import ClusterSpec

from repro.sched import SCHED_SCENARIOS, JobPlanner, generate_jobs
from repro.sched.workload import SchedScenario

MIB = 2**20
GIB = 2**30


def uniform_spec(devices=4, memory=2 * GIB, speeds=None):
    return ClusterSpec(
        nodes=devices, gpus_per_node=1, memory_bytes=memory, device_speed=speeds
    )


# --------------------------------------------------------------------- #
# planner


def test_plan_chain_shape_and_admission_fields():
    planner = JobPlanner(uniform_spec())
    plan = planner.plan_chain("awd", 2, 4, (0, 1), with_reference=True)
    assert plan.num_stages == 2
    assert sorted(plan.stage_devices) == [0, 1]
    assert len(plan.footprints) == 2 and len(plan.caps) == 2
    assert plan.batch_time > 0
    assert all(f > 0 for f in plan.footprints)
    assert plan.fits  # 2 GiB devices trivially hold tiny AWD


def test_plan_chain_requires_matching_grant_size():
    planner = JobPlanner(uniform_spec())
    with pytest.raises(ValueError, match="grant of 3 devices for 2 stages"):
        planner.plan_chain("awd", 2, 4, (0, 1, 2), with_reference=True)


def test_plan_chain_memoizes_on_signature_and_remaps_ids():
    """Two grants with the same speed/memory/adjacency signature share one
    planning result, remapped to the actual device ids."""
    planner = JobPlanner(uniform_spec(devices=6))
    a = planner.plan_chain("bert", 2, 4, (0, 1), with_reference=True)
    b = planner.plan_chain("bert", 2, 4, (4, 5), with_reference=True)
    assert b.devices == (4, 5)
    assert set(b.stage_devices) == {4, 5}
    assert b.batch_time == a.batch_time
    assert b.footprints == a.footprints
    assert b.boundaries == a.boundaries


def test_reference_chain_costs_more_memory():
    """Chain 0 hosts the reference model: its Eq.-8 footprint must exceed
    the same chain planned without the reference copy."""
    planner = JobPlanner(uniform_spec())
    with_ref = planner.plan_chain("bert", 2, 4, (0, 1), with_reference=True)
    without = planner.plan_chain("bert", 2, 4, (0, 1), with_reference=False)
    assert sum(with_ref.footprints) > sum(without.footprints)


def test_admission_rejects_over_capacity():
    """On 96 MiB devices a bert chain's Eq.-8 footprint exceeds the cap;
    the planner must report it as non-fitting, never hide it."""
    planner = JobPlanner(uniform_spec(memory=96 * MIB))
    plan = planner.plan_chain("bert", 2, 4, (0, 1), with_reference=True)
    assert not plan.fits
    assert any(f > c for f, c in zip(plan.footprints, plan.caps))
    assert not planner.best_case_fits("bert", 2, 4)
    # tiny AWD still fits the same devices
    assert planner.best_case_fits("awd", 2, 4)


def test_best_case_fits_needs_enough_devices():
    planner = JobPlanner(uniform_spec(devices=2))
    assert not planner.best_case_fits("awd", 3, 4)


def test_rank_devices_prefers_fast_then_big_then_id():
    spec = ClusterSpec(
        nodes=4,
        gpus_per_node=1,
        memory_bytes=2 * GIB,
        device_speed=(0.5, 1.0, 1.0, 1.0),
        device_memory_bytes=(2 * GIB, GIB, 2 * GIB, 2 * GIB),
    )
    planner = JobPlanner(spec)
    assert planner.rank_devices(range(4)) == [2, 3, 1, 0]


def test_hetero_grant_places_less_work_on_the_slow_device():
    """A half-speed device in the grant routes through the balanced
    partition + placement search; service time must not be worse than
    naively running the uniform cut with the slow device on stage 0."""
    spec = uniform_spec(devices=2, speeds=(1.0, 0.5))
    planner = JobPlanner(spec)
    plan = planner.plan_chain("gnmt", 2, 4, (0, 1), with_reference=True)
    assert plan.fits
    uniform = JobPlanner(uniform_spec(devices=2)).plan_chain(
        "gnmt", 2, 4, (0, 1), with_reference=True
    )
    # the slow device makes the chain slower than a uniform one, but
    # planning kept the slowdown below the naive 2x
    assert uniform.batch_time < plan.batch_time < 2.0 * uniform.batch_time


# --------------------------------------------------------------------- #
# workload generation


def test_generate_jobs_is_deterministic_and_sorted():
    scenario = SCHED_SCENARIOS["smoke"]
    a = generate_jobs(scenario, seed=0)
    b = generate_jobs(scenario, seed=0)
    assert [j.spec for j in a] == [j.spec for j in b]
    times = [j.spec.submit_time for j in a]
    assert times == sorted(times)
    assert len(a) == scenario.num_jobs


def test_generate_jobs_varies_with_seed():
    scenario = SCHED_SCENARIOS["smoke"]
    a = generate_jobs(scenario, seed=0)
    b = generate_jobs(scenario, seed=1)
    assert [j.spec for j in a] != [j.spec for j in b]


def test_generated_micro_counts_divide_the_family_batch():
    from repro.core.simcfg import calibration_for

    for name, scenario in SCHED_SCENARIOS.items():
        for job in generate_jobs(scenario, seed=3):
            cal = calibration_for(job.spec.family)
            assert cal.batch_size % job.spec.num_micro == 0, (name, job.spec)


def test_generated_elastic_ranges_are_valid():
    scenario = SchedScenario(
        name="gen-test",
        description="",
        nodes=2,
        gpus_per_node=2,
        num_jobs=12,
        mean_interarrival=1.0,
    )
    for job in generate_jobs(scenario, seed=5):
        s = job.spec
        assert 1 <= s.min_pipelines <= s.pipelines <= s.max_pipelines
        assert s.weight == float(s.priority + 1)
