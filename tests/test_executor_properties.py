"""Property-based tests on the pipeline executor.

Randomized stage costs and parallelism degrees; the invariants are the
load-bearing guarantees every figure rests on:

* work conservation — per-device compute time is schedule-independent;
* the §4 orderings — AFAB <= advance(k) <= 1F1B in time and the reverse
  in activation memory — hold for *any* uniform pipeline, not just the
  calibrated ones;
* monotonicity of advance in both time and memory;
* per-batch amortization: N pipelines never make a batch slower than
  running them serially would.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.schedules import (
    AFABSchedule,
    AdvanceFPSchedule,
    OneFOneBSchedule,
    PipelineSimRunner,
    StageCosts,
)
from repro.sim import ClusterSpec, Simulator, make_cluster

GIB = 2**30


def run_case(schedule, fwd, act, num_micro, mb_size, pipelines=1, k=6):
    sim = Simulator()
    cluster = make_cluster(
        sim, k, spec=ClusterSpec(nodes=k // 2, gpus_per_node=2, memory_bytes=32 * GIB)
    )
    costs = StageCosts(
        fwd_flops=tuple(fwd),
        act_out_bytes=tuple(act),
        stash_bytes=tuple(3 * a for a in act),
        param_bytes=(1_000_000,) * k,
    )
    runner = PipelineSimRunner(
        cluster, schedule, costs, num_micro=num_micro, mb_size=mb_size,
        num_pipelines=pipelines,
    )
    return runner.run(iterations=1)


# Heterogeneous stages: general invariants (work conservation, memory).
costs_strategy = st.tuples(
    st.lists(st.floats(1e6, 8e6), min_size=6, max_size=6),
    st.lists(st.floats(1e5, 4e6), min_size=6, max_size=6),
    st.sampled_from([4, 8, 16]),
    st.sampled_from([2.0, 8.0, 16.0]),
)

# Uniform stages: the §4 time orderings are only theorems when no single
# stage dominates (an imbalanced pipeline with cheap comm lets 1F1B beat
# AFAB by draining the bottleneck earlier — a real effect we *keep*).
uniform_strategy = st.tuples(
    st.floats(1e6, 8e6),
    st.floats(2e5, 4e6),
    st.sampled_from([4, 8, 16]),
    st.sampled_from([2.0, 8.0, 16.0]),
)


def _expand(case):
    fwd, act, m, mb = case
    return [fwd] * 6, [act] * 6, m, mb


@settings(max_examples=12, deadline=None)
@given(case=costs_strategy)
def test_compute_time_is_schedule_independent(case):
    fwd, act, m, mb = case
    g_afab = [d["gpu"] for d in run_case(AFABSchedule(), fwd, act, m, mb).decomposition]
    g_1f1b = [d["gpu"] for d in run_case(OneFOneBSchedule(versions=1), fwd, act, m, mb).decomposition]
    assert g_afab == pytest.approx(g_1f1b, rel=0.07)


@settings(max_examples=12, deadline=None)
@given(case=uniform_strategy)
def test_afab_never_meaningfully_slower_than_1f1b(case):
    """AFAB's advantage is a claim about the paper's regime (comm below
    compute): with negligible comm the schedules tie, and in *link-bound*
    corners 1F1B can genuinely win a few percent — its interleaving keeps
    the forward and backward links busy concurrently while AFAB's phases
    use one direction at a time.  The generic invariant is therefore a
    10% band; the strict ordering is asserted by the calibrated
    integration tests where comm sits in the paper's regime."""
    fwd, act, m, mb = _expand(case)
    t_afab = run_case(AFABSchedule(), fwd, act, m, mb).batch_time
    t_1f1b = run_case(OneFOneBSchedule(versions=1), fwd, act, m, mb).batch_time
    assert t_afab <= t_1f1b * 1.10


@settings(max_examples=10, deadline=None)
@given(case=uniform_strategy, advance=st.integers(1, 8))
def test_advance_between_the_endpoints(case, advance):
    """Advance-FP lands between AFAB and 1F1B up to a 10% edge band (in
    comm-saturated corners its staggered sends can even edge out AFAB's
    forward burst, and drain-edge effects blur the 1F1B end)."""
    fwd, act, m, mb = _expand(case)
    t_afab = run_case(AFABSchedule(), fwd, act, m, mb).batch_time
    t_adv = run_case(AdvanceFPSchedule(min(advance, m)), fwd, act, m, mb).batch_time
    t_1f1b = run_case(OneFOneBSchedule(versions=1), fwd, act, m, mb).batch_time
    # The band edges are float sums of simulated event times; an absolute
    # epsilon keeps exact-boundary cases from failing on rounding alone.
    eps = 1e-6 * max(t_afab, t_1f1b)
    assert t_afab * 0.90 - eps <= t_adv <= t_1f1b * 1.10 + eps


@settings(max_examples=10, deadline=None)
@given(case=costs_strategy)
def test_activation_memory_ordering(case):
    fwd, act, m, mb = case
    m_afab = max(run_case(AFABSchedule(), fwd, act, m, mb).data_memory_peak)
    m_adv = max(run_case(AdvanceFPSchedule(2), fwd, act, m, mb).data_memory_peak)
    m_1f1b = max(run_case(OneFOneBSchedule(versions=1), fwd, act, m, mb).data_memory_peak)
    assert m_1f1b <= m_adv <= m_afab


@settings(max_examples=8, deadline=None)
@given(case=costs_strategy, pipelines=st.integers(2, 3))
def test_parallel_pipelines_amortize(case, pipelines):
    """An iteration of N co-scheduled pipelines is never slower than N
    serial batches (processor sharing cannot destroy throughput)."""
    fwd, act, m, mb = case
    solo = run_case(AdvanceFPSchedule(1), fwd, act, m, mb, pipelines=1).batch_time
    multi = run_case(AdvanceFPSchedule(1), fwd, act, m, mb, pipelines=pipelines).batch_time
    assert multi <= pipelines * solo * (1 + 1e-6)


@settings(max_examples=8, deadline=None)
@given(case=costs_strategy)
def test_comm_time_at_least_serialization_floor(case):
    """Per-stage sent-communication time can't beat bytes/bandwidth."""
    fwd, act, m, mb = case
    res = run_case(AFABSchedule(), fwd, act, m, mb)
    inter_bw = 1.25e8
    for k in range(5):  # stages with a downstream neighbour
        sent_bytes = act[k] * m  # forward activations per batch
        floor = sent_bytes / 8.0e9  # even the fast intra-node link
        assert res.comm_sent_time[k] >= floor * 0.99
