"""Data substrate: vocab, loaders, micro-batch slicing, synthetic corpora."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    BOS,
    EOS,
    PAD,
    UNK,
    ArrayDataset,
    DataLoader,
    LMConfig,
    ParaphraseConfig,
    TranslationConfig,
    Vocab,
    batchify_lm,
    bleu_like,
    make_lm_corpus,
    make_paraphrase_dataset,
    make_translation_dataset,
)
from repro.data.dataset import split_microbatches


class TestVocab:
    def test_specials_reserved(self):
        v = Vocab()
        assert (v.token(PAD), v.token(BOS), v.token(EOS), v.token(UNK)) == (
            "<pad>", "<bos>", "<eos>", "<unk>",
        )

    def test_add_is_idempotent(self):
        v = Vocab()
        assert v.add("cat") == v.add("cat")
        assert len(v) == 5

    def test_unknown_maps_to_unk(self):
        assert Vocab().index("martian") == UNK

    def test_encode_decode_roundtrip(self):
        v = Vocab(["a", "b", "c"])
        ids = v.encode(["a", "c"], add_bos=True, add_eos=True)
        assert ids[0] == BOS and ids[-1] == EOS
        assert v.decode(ids) == ["a", "c"]


class TestArrayDatasetAndLoader:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(a=np.zeros(3), b=np.zeros(4))

    def test_loader_is_deterministic_per_seed(self):
        ds = ArrayDataset(x=np.arange(32))
        l1 = DataLoader(ds, batch_size=8, seed=5)
        l2 = DataLoader(ds, batch_size=8, seed=5)
        for b1, b2 in zip(l1, l2):
            assert np.array_equal(b1["x"], b2["x"])

    def test_loader_shuffles_across_epochs(self):
        ds = ArrayDataset(x=np.arange(32))
        loader = DataLoader(ds, batch_size=32, seed=5)
        first = next(iter(loader))["x"].copy()
        second = next(iter(loader))["x"].copy()
        assert not np.array_equal(first, second)
        assert np.array_equal(np.sort(first), np.sort(second))

    def test_drop_last(self):
        ds = ArrayDataset(x=np.arange(10))
        assert len(DataLoader(ds, batch_size=4)) == 2
        assert len(DataLoader(ds, batch_size=4, drop_last=False)) == 3

    def test_batch_too_large_rejected(self):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(x=np.arange(3)), batch_size=8)


class TestSplitMicrobatches:
    def test_even_split(self):
        batch = {"x": np.arange(12), "y": np.arange(12) * 2}
        micros = split_microbatches(batch, 3)
        assert len(micros) == 3
        assert all(len(m["x"]) == 4 for m in micros)
        assert np.array_equal(np.concatenate([m["y"] for m in micros]), batch["y"])

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            split_microbatches({"x": np.arange(10)}, 3)

    def test_ragged_batch_rejected(self):
        with pytest.raises(ValueError):
            split_microbatches({"x": np.arange(4), "y": np.arange(6)}, 2)

    @settings(max_examples=25, deadline=None)
    @given(
        log_batch=st.integers(2, 6),
        log_micro=st.integers(0, 6),
    )
    def test_property_concat_inverts_split(self, log_batch, log_micro):
        if log_micro > log_batch:
            return
        batch_size, m = 2**log_batch, 2**log_micro
        batch = {"x": np.random.default_rng(0).integers(0, 9, size=(batch_size, 3))}
        micros = split_microbatches(batch, m)
        assert len(micros) == m
        assert np.array_equal(np.concatenate([mb["x"] for mb in micros]), batch["x"])


class TestTranslationCorpus:
    def test_target_is_deterministic_function_of_source(self):
        cfg = TranslationConfig(num_pairs=64, vocab_size=12, seq_len=6, seed=3)
        t1, _, _ = make_translation_dataset(cfg)
        t2, _, _ = make_translation_dataset(cfg)
        assert np.array_equal(t1.arrays["src"], t2.arrays["src"])
        assert np.array_equal(t1.arrays["tgt_out"], t2.arrays["tgt_out"])

    def test_framing_tokens(self):
        train, _, _ = make_translation_dataset(TranslationConfig(num_pairs=16, seq_len=5))
        src = train.arrays["src"]
        assert np.all(src[:, 0] == BOS)
        assert np.all(src[:, 6] == EOS)
        tgt_out = train.arrays["tgt_out"]
        assert np.all(tgt_out[:, 5] == EOS)

    def test_decoder_input_is_shifted_target(self):
        train, _, _ = make_translation_dataset(TranslationConfig(num_pairs=16, seq_len=5))
        tgt_in, tgt_out = train.arrays["tgt_in"], train.arrays["tgt_out"]
        assert np.all(tgt_in[:, 0] == BOS)
        assert np.array_equal(tgt_in[:, 1:6], tgt_out[:, 0:5])

    def test_mapping_is_a_bijection(self):
        """Every distinct source content token maps to a distinct target token."""
        cfg = TranslationConfig(num_pairs=512, vocab_size=10, seq_len=8, seed=1)
        train, _, _ = make_translation_dataset(cfg)
        src = train.arrays["src"][:, 1:9]
        # invert the adjacent swap to realign positions
        tgt = train.arrays["tgt_out"][:, 0:8].copy()
        swapped = tgt.copy()
        swapped[:, 0:8:2], swapped[:, 1:8:2] = tgt[:, 1:8:2], tgt[:, 0:8:2]
        pairs = set(zip(src.reshape(-1).tolist(), swapped.reshape(-1).tolist()))
        sources = [s for s, _ in pairs]
        targets = [t for _, t in pairs]
        assert len(set(sources)) == len(pairs)  # function
        assert len(set(targets)) == len(pairs)  # injective


class TestBleuLike:
    def test_perfect_match_scores_100(self):
        seqs = [[5, 6, 7, 8], [9, 10, 11]]
        assert bleu_like(seqs, seqs) == pytest.approx(100.0)

    def test_disjoint_tokens_score_near_zero(self):
        # Corpus-scale: smoothing must not mask a total mismatch.
        hyps = [[5, 6, 7, 5, 6] for _ in range(40)]
        refs = [[8, 9, 10, 11, 12] for _ in range(40)]
        assert bleu_like(hyps, refs) < 2.0

    def test_brevity_penalty(self):
        ref = [[5, 6, 7, 8, 9, 10]]
        short = [[5, 6, 7]]
        full = [[5, 6, 7, 8, 9, 10]]
        assert bleu_like(short, ref) < bleu_like(full, ref)

    def test_specials_stripped(self):
        assert bleu_like([[BOS, 5, 6, EOS]], [[5, 6]]) == pytest.approx(100.0)

    def test_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            bleu_like([[1]], [[1], [2]])


class TestParaphraseCorpus:
    def test_label_range(self):
        cfg = ParaphraseConfig(num_pairs=128, num_topics=4, vocab_size=20)
        train, valid, _ = make_paraphrase_dataset(cfg)
        labels = np.concatenate([train.arrays["labels"], valid.arrays["labels"]])
        assert labels.min() >= 0 and labels.max() < 4

    def test_packing_layout(self):
        cfg = ParaphraseConfig(num_pairs=32, seq_len=5)
        train, _, vocab = make_paraphrase_dataset(cfg)
        tokens = train.arrays["tokens"]
        sep = vocab.index("<sep>")
        assert tokens.shape[1] == 13
        assert np.all(tokens[:, 0] == BOS)
        assert np.all(tokens[:, 6] == sep)
        assert np.all(tokens[:, 12] == EOS)

    def test_topic_signal_exists(self):
        """Sentences of the same topic share token blocks: a naive
        block-histogram classifier must beat chance by a wide margin."""
        cfg = ParaphraseConfig(num_pairs=512, num_topics=4, vocab_size=40, seq_len=8, seed=9)
        train, _, vocab = make_paraphrase_dataset(cfg)
        offset = vocab.index("<sep>") + 1
        block = cfg.vocab_size // cfg.num_topics
        tokens = train.arrays["tokens"][:, 1:9] - offset  # first sentence
        votes = np.zeros((len(tokens), cfg.num_topics))
        for t in range(cfg.num_topics):
            votes[:, t] = ((tokens >= t * block) & (tokens < (t + 1) * block)).sum(axis=1)
        acc = (votes.argmax(axis=1) == train.arrays["labels"]).mean()
        assert acc > 0.7

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_paraphrase_dataset(ParaphraseConfig(vocab_size=6, num_topics=6))


class TestLMCorpus:
    def test_tokens_in_range_and_deterministic(self):
        cfg = LMConfig(corpus_len=2000, vocab_size=10, seed=4)
        t1, v1, h1 = make_lm_corpus(cfg)
        t2, v2, h2 = make_lm_corpus(cfg)
        assert np.array_equal(t1, t2) and h1 == h2
        assert t1.min() >= 0 and t1.max() < 10

    def test_entropy_rate_below_uniform(self):
        cfg = LMConfig(corpus_len=2000, vocab_size=16, branching=3)
        _, _, entropy = make_lm_corpus(cfg)
        assert 0 < entropy < np.log(16)
        assert entropy <= np.log(3) + 1e-9  # at most log(branching)

    def test_batchify_targets_shifted_by_one(self):
        tokens = np.arange(100)
        batches = batchify_lm(tokens, batch_size=4, bptt=5)
        for batch in batches:
            assert np.array_equal(batch["input"] + 1, batch["target"])

    def test_batchify_rows_are_contiguous_streams(self):
        tokens = np.arange(101)
        batches = batchify_lm(tokens, batch_size=4, bptt=7)
        row0 = np.concatenate([b["input"][0] for b in batches])
        assert np.array_equal(row0, np.arange(len(row0)))

    def test_batchify_rejects_tiny_corpus(self):
        with pytest.raises(ValueError):
            batchify_lm(np.arange(3), batch_size=8, bptt=4)


class TestArrayDatasetSubset:
    def test_subset_selects_rows(self):
        ds = ArrayDataset(x=np.arange(10), y=np.arange(10) * 2)
        sub = ds.subset(np.array([1, 3, 5]))
        assert len(sub) == 3
        assert np.array_equal(sub.arrays["y"], [2, 6, 10])

    def test_getitem_returns_row_dict(self):
        ds = ArrayDataset(x=np.arange(6).reshape(3, 2))
        row = ds[1]
        assert np.array_equal(row["x"], [2, 3])
