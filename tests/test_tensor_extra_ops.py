"""Coverage for the less-travelled tensor ops and autograd corners."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck, no_grad, tensor


def _rand(*shape, seed=0):
    rng = np.random.default_rng(seed)
    return tensor(rng.standard_normal(shape), requires_grad=True, dtype=np.float64)


class TestElementwiseExtras:
    def test_exp_log_roundtrip_gradient(self):
        x = tensor(np.abs(np.random.default_rng(0).standard_normal(5)) + 0.5,
                   requires_grad=True, dtype=np.float64)
        assert gradcheck(lambda t: t.exp().log(), [x])

    def test_sqrt(self):
        x = tensor(np.abs(np.random.default_rng(1).standard_normal(5)) + 0.5,
                   requires_grad=True, dtype=np.float64)
        assert gradcheck(lambda t: t.sqrt(), [x])

    def test_abs_gradient_sign(self):
        x = tensor([-2.0, 3.0], requires_grad=True)
        x.abs().sum().backward()
        assert np.allclose(x.grad, [-1.0, 1.0])

    def test_clip_blocks_gradient_outside_range(self):
        x = tensor([-5.0, 0.5, 5.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_pow_rejects_tensor_exponent(self):
        x = tensor([2.0], requires_grad=True)
        with pytest.raises(TypeError):
            x ** tensor([2.0])


class TestReductionsExtras:
    def test_var_matches_numpy(self):
        x = _rand(4, 6, seed=2)
        assert np.allclose(x.var(axis=1).data, x.data.var(axis=1), atol=1e-6)

    def test_var_gradcheck(self):
        assert gradcheck(lambda t: t.var(axis=-1), [_rand(3, 5, seed=3)])

    def test_max_axis_keepdims(self):
        x = _rand(3, 4, seed=4)
        out = x.max(axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_max_ties_split_gradient(self):
        x = tensor([2.0, 2.0, 1.0], requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.5, 0.5, 0.0])

    def test_mean_axis_tuple(self):
        x = _rand(2, 3, 4, seed=5)
        out = x.mean(axis=(0, 2))
        assert out.shape == (3,)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0 / 8)


class TestShapeExtras:
    def test_swapaxes_gradcheck(self):
        assert gradcheck(lambda t: t.swapaxes(0, 2) * 2.0, [_rand(2, 3, 4, seed=6)])

    def test_broadcast_to_sums_gradient(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        x.broadcast_to((3, 2)).sum().backward()
        assert np.allclose(x.grad, [3.0, 3.0])

    def test_transpose_explicit_axes(self):
        x = _rand(2, 3, 4, seed=7)
        assert x.transpose(2, 0, 1).shape == (4, 2, 3)
        assert gradcheck(lambda t: t.transpose(2, 0, 1), [x])

    def test_reshape_accepts_tuple(self):
        x = _rand(6, seed=8)
        assert x.reshape((2, 3)).shape == (2, 3)


class TestAutogradCorners:
    def test_no_grad_nesting_restores_state(self):
        a = tensor([1.0], requires_grad=True)
        with no_grad():
            with no_grad():
                pass
            out = a * 2
        assert not out.requires_grad
        out2 = a * 2
        assert out2.requires_grad

    def test_mixed_grad_and_nograd_parents(self):
        a = tensor([1.0], requires_grad=True)
        b = tensor([2.0])  # no grad
        out = a * b
        out.sum().backward()
        assert np.allclose(a.grad, [2.0])
        assert b.grad is None

    def test_copy_preserves_flag_detach_drops_it(self):
        a = tensor([1.0], requires_grad=True)
        assert a.copy().requires_grad
        assert not a.detach().requires_grad

    def test_getitem_with_tensor_index(self):
        a = tensor([1.0, 2.0, 3.0], requires_grad=True)
        idx = Tensor(np.array([0, 2]))
        out = a[idx]
        assert np.allclose(out.data, [1.0, 3.0])

    def test_repr_does_not_crash_on_large_tensor(self):
        assert "Tensor" in repr(tensor(np.zeros((100, 100))))

    def test_diamond_graph_gradients(self):
        """x feeds two branches that recombine: gradients must sum."""
        x = _rand(3, seed=9)
        assert gradcheck(lambda t: (t * 2.0) + (t.exp() * t), [x], atol=5e-3)
