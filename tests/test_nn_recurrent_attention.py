"""LSTM, attention and transformer layer behaviour."""

import numpy as np
import pytest

from repro.nn import LSTM, LSTMCell, MultiHeadAttention, PositionalEncoding, TransformerEncoderLayer
from repro.tensor import Tensor, gradcheck, tensor


def _f64(module):
    for p in module.parameters():
        p.data = p.data.astype(np.float64)
    return module


class TestLSTMCell:
    def test_state_shapes(self):
        cell = LSTMCell(3, 5)
        h, c = cell.init_state(4)
        h2, c2 = cell(Tensor(np.zeros((4, 3), np.float32)), (h, c))
        assert h2.shape == (4, 5) and c2.shape == (4, 5)

    def test_cell_state_bounded_h(self):
        cell = LSTMCell(3, 5)
        h, c = cell.init_state(2)
        for _ in range(50):
            h, c = cell(Tensor(np.random.rand(2, 3).astype(np.float32) * 10), (h, c))
        assert np.all(np.abs(h.data) <= 1.0)  # h = o * tanh(c) in (-1, 1)
        assert np.all(np.isfinite(c.data))

    def test_gradcheck_through_two_steps(self):
        cell = _f64(LSTMCell(2, 3))
        x = tensor(np.random.default_rng(0).standard_normal((2, 2)), requires_grad=True, dtype=np.float64)

        def run(t):
            h, c = cell.init_state(2)
            h, c = cell(t, (h, c))
            h, c = cell(t, (h, c))
            return h

        assert gradcheck(run, [x])

    def test_wrong_input_dim(self):
        cell = LSTMCell(3, 5)
        with pytest.raises(ValueError):
            cell(Tensor(np.zeros((1, 4), np.float32)), cell.init_state(1))


class TestLSTM:
    def test_sequence_output_shape(self):
        lstm = LSTM(3, 6)
        out, (h, c) = lstm(Tensor(np.zeros((7, 2, 3), np.float32)))
        assert out.shape == (7, 2, 6)
        assert h.shape == (2, 6)

    def test_final_state_equals_last_output(self):
        lstm = LSTM(3, 6)
        out, (h, _) = lstm(Tensor(np.random.rand(5, 2, 3).astype(np.float32)))
        assert np.allclose(out.data[-1], h.data)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            LSTM(3, 6)(Tensor(np.zeros((5, 3), np.float32)))

    def test_state_carrying_changes_output(self):
        lstm = LSTM(3, 6)
        x = Tensor(np.random.rand(4, 2, 3).astype(np.float32))
        out1, state = lstm(x)
        out2, _ = lstm(x, state)
        assert not np.allclose(out1.data, out2.data)


class TestMultiHeadAttention:
    def test_self_attention_shape(self):
        attn = MultiHeadAttention(16, 4)
        out = attn(Tensor(np.random.rand(2, 5, 16).astype(np.float32)))
        assert out.shape == (2, 5, 16)

    def test_indivisible_heads_raise(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_boolean_mask_blocks_positions(self):
        attn = MultiHeadAttention(8, 2)
        attn.eval()
        x = Tensor(np.random.rand(1, 4, 8).astype(np.float32))
        # Mask out key position 3 entirely.
        mask = np.ones((1, 1, 4, 4), dtype=bool)
        mask[..., 3] = False
        out_masked = attn(x, mask=mask)
        # Changing the masked key's content must not change the output.
        x2 = x.data.copy()
        x2[0, 3] += 10.0
        out_masked2 = attn(Tensor(x2), mask=mask)
        q_same = np.allclose(out_masked.data[:, :3], out_masked2.data[:, :3], atol=1e-5)
        assert q_same

    def test_full_gradcheck(self):
        attn = _f64(MultiHeadAttention(4, 2))
        attn.eval()
        x = tensor(np.random.default_rng(1).standard_normal((1, 3, 4)), requires_grad=True, dtype=np.float64)
        assert gradcheck(lambda t: attn(t), [x], atol=5e-3)

    def test_cross_attention_uses_kv_length(self):
        attn = MultiHeadAttention(8, 2)
        q = Tensor(np.random.rand(2, 3, 8).astype(np.float32))
        kv = Tensor(np.random.rand(2, 7, 8).astype(np.float32))
        out = attn(q, kv)
        assert out.shape == (2, 3, 8)


class TestTransformerBlock:
    def test_preserves_shape(self):
        block = TransformerEncoderLayer(16, 4, 32, dropout_p=0.0)
        out = block(Tensor(np.random.rand(2, 6, 16).astype(np.float32)))
        assert out.shape == (2, 6, 16)

    def test_deep_stack_gradient_reaches_bottom(self):
        blocks = [TransformerEncoderLayer(8, 2, 16, dropout_p=0.0) for _ in range(6)]
        x = Tensor(np.random.rand(2, 4, 8).astype(np.float32), requires_grad=True)
        out = x
        for b in blocks:
            out = b(out)
        out.sum().backward()
        # Pre-norm residual stream keeps gradients healthy at depth.
        first_grads = blocks[0].ff1.weight.grad
        assert first_grads is not None
        assert np.abs(first_grads).max() > 1e-7


class TestPositionalEncoding:
    def test_adds_position_information(self):
        pe = PositionalEncoding(8, max_len=16)
        x = Tensor(np.zeros((1, 5, 8), np.float32))
        out = pe(x)
        # Two different positions must get different codes.
        assert not np.allclose(out.data[0, 0], out.data[0, 1])

    def test_sequence_too_long_raises(self):
        pe = PositionalEncoding(8, max_len=4)
        with pytest.raises(ValueError):
            pe(Tensor(np.zeros((1, 5, 8), np.float32)))

    def test_odd_d_model(self):
        pe = PositionalEncoding(7, max_len=8)
        out = pe(Tensor(np.zeros((1, 3, 7), np.float32)))
        assert out.shape == (1, 3, 7)
