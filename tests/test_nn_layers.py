"""Layer-level behaviour: Linear, Embedding, LayerNorm, Dropout, WeightDrop."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, LayerNorm, Linear, WeightDrop, LSTMCell
from repro.tensor import Tensor, gradcheck, tensor


class TestLinear:
    def test_shape_and_bias(self):
        layer = Linear(5, 3)
        out = layer(Tensor(np.zeros((2, 5), np.float32)))
        assert out.shape == (2, 3)
        assert np.allclose(out.data, layer.bias.data)

    def test_batched_3d_input(self):
        layer = Linear(4, 6)
        out = layer(Tensor(np.random.rand(2, 7, 4).astype(np.float32)))
        assert out.shape == (2, 7, 6)

    def test_wrong_last_dim_raises(self):
        with pytest.raises(ValueError):
            Linear(4, 2)(Tensor(np.zeros((1, 3), np.float32)))

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_full_layer_gradcheck(self):
        layer = Linear(3, 2)
        layer.weight.data = layer.weight.data.astype(np.float64)
        layer.bias.data = layer.bias.data.astype(np.float64)
        x = tensor(np.random.default_rng(0).standard_normal((4, 3)), requires_grad=True, dtype=np.float64)
        assert gradcheck(lambda t: layer(t), [x])
        layer.zero_grad()
        layer(x).sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 2)


class TestEmbedding:
    def test_padding_row_initialized_to_zero(self):
        emb = Embedding(10, 4, padding_idx=0)
        assert np.allclose(emb.weight.data[0], 0.0)

    def test_out_of_range_raises(self):
        emb = Embedding(5, 2)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_lookup_gradients_accumulate(self):
        emb = Embedding(5, 2)
        out = emb(np.array([3, 3, 1]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[3], 2.0)
        assert np.allclose(emb.weight.grad[1], 1.0)

    def test_accepts_tensor_indices(self):
        emb = Embedding(5, 2)
        out = emb(Tensor(np.array([0, 1])))
        assert out.shape == (2, 2)


class TestLayerNorm:
    def test_wrong_dim_raises(self):
        with pytest.raises(ValueError):
            LayerNorm(8)(Tensor(np.zeros((2, 4), np.float32)))

    def test_identity_affine_standardizes(self):
        ln = LayerNorm(16)
        x = Tensor((np.random.rand(3, 16) * 10 + 5).astype(np.float32))
        out = ln(x)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-5)


class TestWeightDrop:
    def _make(self, p):
        cell = LSTMCell(4, 4)
        return WeightDrop(cell, ["weight_hh"], p=p), cell

    def test_eval_mode_keeps_weights(self):
        wd, cell = self._make(0.5)
        wd.eval()
        original = cell.weight_hh.data.copy()
        state = cell.init_state(2)
        wd(Tensor(np.random.rand(2, 4).astype(np.float32)), state)
        assert np.array_equal(cell.weight_hh.data, original)

    def test_training_restores_weights_after_call(self):
        wd, cell = self._make(0.5)
        original = cell.weight_hh.data.copy()
        wd(Tensor(np.random.rand(2, 4).astype(np.float32)), cell.init_state(2))
        assert np.array_equal(cell.weight_hh.data, original)

    def test_unknown_weight_name_raises(self):
        with pytest.raises(KeyError):
            WeightDrop(LSTMCell(4, 4), ["nope"], p=0.5)

    def test_gradients_flow_to_masked_weight(self):
        wd, cell = self._make(0.4)
        h, c = wd(Tensor(np.random.rand(2, 4).astype(np.float32)), cell.init_state(2))
        (h.sum() + c.sum()).backward()
        assert cell.weight_hh.grad is not None


class TestDropoutLayer:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_reproducible_after_seed(self):
        d1, d2 = Dropout(0.5), Dropout(0.5)
        d1.seed(77)
        d2.seed(77)
        x = Tensor(np.ones((8, 8), np.float32))
        assert np.array_equal(d1(x).data, d2(x).data)
