"""Optimizer semantics: update rules, state handling, clipping, schedulers,
and the EASGD baseline's coupling invariants."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential
from repro.nn.module import Parameter
from repro.optim import ASGD, SGD, Adagrad, Adam, AdamW, ConstantLR, EASGD, StepLR, WarmupLinearLR
from repro.tensor import Tensor


def make_param(values):
    p = Parameter(np.array(values, dtype=np.float32))
    return p


class TestSGD:
    def test_plain_update(self):
        p = make_param([1.0])
        p.grad = np.array([0.5], dtype=np.float32)
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        for _ in range(2):
            p.grad = np.array([1.0], dtype=np.float32)
            opt.step()
        # v1 = 1, x1 = -1; v2 = 1.9, x2 = -2.9
        assert np.allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = make_param([10.0])
        p.grad = np.zeros(1, dtype=np.float32)
        SGD([p], lr=0.1, weight_decay=0.1).step()
        assert np.allclose(p.data, [10.0 - 0.1 * 1.0])

    def test_none_grad_skipped(self):
        p = make_param([1.0])
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [1.0])

    def test_invalid_hyperparams(self):
        p = make_param([1.0])
        with pytest.raises(ValueError):
            SGD([p], lr=-1)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_equals_lr_signed(self):
        """With bias correction, step 1 moves by ~lr * sign(grad)."""
        p = make_param([0.0])
        p.grad = np.array([3.0], dtype=np.float32)
        Adam([p], lr=0.01).step()
        assert np.allclose(p.data, [-0.01], atol=1e-5)

    def test_matches_reference_implementation(self):
        rng = np.random.default_rng(0)
        p = make_param(rng.standard_normal(5))
        ref = p.data.astype(np.float64).copy()
        opt = Adam([p], lr=0.05, betas=(0.9, 0.999), eps=1e-8)
        m = np.zeros(5)
        v = np.zeros(5)
        for t in range(1, 6):
            g = rng.standard_normal(5)
            p.grad = g.astype(np.float32)
            opt.step()
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g * g
            ref -= 0.05 * (m / (1 - 0.9**t)) / (np.sqrt(v / (1 - 0.999**t)) + 1e-8)
        assert np.allclose(p.data, ref, atol=1e-4)

    def test_state_dict_roundtrip_continues_identically(self):
        rng = np.random.default_rng(1)
        p1 = make_param(rng.standard_normal(3))
        p2 = make_param(p1.data.copy())
        o1, o2 = Adam([p1], lr=0.1), Adam([p2], lr=0.1)
        g = rng.standard_normal(3).astype(np.float32)
        p1.grad = g.copy()
        o1.step()
        o2.load_state_dict(o1.state_dict())
        p2.data = p1.data.copy()
        g2 = rng.standard_normal(3).astype(np.float32)
        p1.grad, p2.grad = g2.copy(), g2.copy()
        o1.step()
        o2.step()
        assert np.allclose(p1.data, p2.data)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([make_param([1.0])], betas=(1.0, 0.9))


class TestAdamW:
    def test_decay_is_decoupled_from_gradient_statistics(self):
        """With zero gradient AdamW still shrinks the weights; Adam with
        coupled weight_decay would route the decay through the moments."""
        p = make_param([10.0])
        p.grad = np.zeros(1, dtype=np.float32)
        opt = AdamW([p], lr=0.1, weight_decay=0.1)
        opt.step()
        assert np.allclose(p.data, [10.0 * (1 - 0.01)], atol=1e-5)

    def test_zero_decay_matches_adam(self):
        rng = np.random.default_rng(3)
        p1 = make_param(rng.standard_normal(4))
        p2 = make_param(p1.data.copy())
        o1 = Adam([p1], lr=0.05)
        o2 = AdamW([p2], lr=0.05, weight_decay=0.0)
        for _ in range(3):
            g = rng.standard_normal(4).astype(np.float32)
            p1.grad, p2.grad = g.copy(), g.copy()
            o1.step()
            o2.step()
        assert np.allclose(p1.data, p2.data, atol=1e-6)

    def test_negative_decay_rejected(self):
        with pytest.raises(ValueError):
            AdamW([make_param([1.0])], weight_decay=-0.1)


class TestAdagrad:
    def test_learning_rate_decays_with_accumulation(self):
        p = make_param([0.0])
        opt = Adagrad([p], lr=1.0)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        first_move = -float(p.data[0])
        before = float(p.data[0])
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        second_move = before - float(p.data[0])
        assert second_move < first_move


class TestASGD:
    def test_tail_average_tracked(self):
        p = make_param([0.0])
        opt = ASGD([p], lr=0.5, t0=0)
        trajectory = []
        for g in [1.0, -1.0, 1.0]:
            p.grad = np.array([g], dtype=np.float32)
            opt.step()
            trajectory.append(float(p.data[0]))
        opt.swap_averaged()
        assert np.allclose(p.data, [np.mean(trajectory)], atol=1e-6)
        opt.swap_back()
        assert np.allclose(p.data, [trajectory[-1]])

    def test_step_while_swapped_raises(self):
        p = make_param([0.0])
        opt = ASGD([p], lr=0.5)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        opt.swap_averaged()
        with pytest.raises(RuntimeError):
            opt.step()

    def test_double_swap_raises(self):
        p = make_param([0.0])
        opt = ASGD([p], lr=0.5)
        with pytest.raises(RuntimeError):
            opt.swap_back()


class TestClipGradNorm:
    def test_norm_reported_and_applied(self):
        p = make_param([3.0, 4.0])
        p.grad = np.array([3.0, 4.0], dtype=np.float32)
        opt = SGD([p], lr=1.0)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, abs=1e-5)

    def test_below_threshold_untouched(self):
        p = make_param([1.0])
        p.grad = np.array([0.5], dtype=np.float32)
        SGD([p], lr=1.0).clip_grad_norm(10.0)
        assert np.allclose(p.grad, [0.5])


class TestSchedulers:
    def test_constant(self):
        opt = SGD([make_param([1.0])], lr=0.1)
        sched = ConstantLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_step_lr_decays(self):
        opt = SGD([make_param([1.0])], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_warmup_then_decay(self):
        opt = SGD([make_param([1.0])], lr=1.0)
        sched = WarmupLinearLR(opt, warmup_steps=2, total_steps=6)
        lrs = []
        for _ in range(6):
            sched.step()
            lrs.append(round(opt.lr, 4))
        assert lrs[0] < lrs[1]  # warming up
        assert lrs[-1] == pytest.approx(0.0)
        assert max(lrs) <= 1.0


class TestEASGD:
    def _models(self, n=3):
        models = [Sequential(Linear(4, 4, bias=False)) for _ in range(n)]
        center = Sequential(Linear(4, 4, bias=False))
        base = center.state_dict()
        for m in models:
            m.load_state_dict(base)
        return models, center

    def test_center_conservation(self):
        """The elastic exchange conserves sum(x_i) + n * discrepancy:
        specifically center moves by alpha * sum(diffs) while each worker
        moves by -alpha * diff — total momentum is conserved."""
        models, center = self._models()
        rng = np.random.default_rng(0)
        for m in models:
            for p in m.parameters():
                p.data = rng.standard_normal(p.shape).astype(np.float32)
        easgd = EASGD(models, center, lr=0.5, rho=0.1)
        worker_before = sum(p.data.sum() for m in models for p in m.parameters())
        center_before = sum(p.data.sum() for p in center.parameters())
        easgd.sync()
        worker_after = sum(p.data.sum() for m in models for p in m.parameters())
        center_after = sum(p.data.sum() for p in center.parameters())
        assert worker_after + center_after == pytest.approx(worker_before + center_before, abs=1e-3)

    def test_sync_pulls_workers_toward_center(self):
        models, center = self._models(n=2)
        for p in models[0].parameters():
            p.data = p.data + 1.0
        easgd = EASGD(models, center, lr=0.5, rho=0.2)
        div_before = easgd_divergence(models, center)
        easgd.sync()
        assert easgd_divergence(models, center) < div_before

    def test_unstable_coefficient_rejected(self):
        models, center = self._models(n=4)
        with pytest.raises(ValueError):
            EASGD(models, center, lr=1.0, rho=0.3)  # 4 * 0.3 >= 1

    def test_local_step_applies_gradient(self):
        models, center = self._models(n=1)
        p = next(iter(models[0].parameters()))
        p.grad = np.ones_like(p.data)
        before = p.data.copy()
        EASGD(models, center, lr=0.5, rho=0.1).local_step(0)
        assert np.allclose(p.data, before - 0.5)


def easgd_divergence(models, center):
    total = 0.0
    cparams = dict(center.named_parameters())
    for m in models:
        for name, p in m.named_parameters():
            total += float(((p.data - cparams[name].data) ** 2).sum())
    return total
