"""The deterministic residual model and learned predictor (repro.tune).

The decisive properties: corrections are exactly the measured/predicted
ratio on seen settings (so a learned ranking of seen configs is a
measured ranking — never worse than analytic), estimation degrades
gracefully (least squares → k-NN → 1.0) and deterministically (no RNG
anywhere), OOM records veto their setting, and the memory headroom is
inflate-only.
"""

import math

import pytest

from repro.core.predictor import Predictor
from repro.tune.residual import (
    CORRECTION_CLIP,
    MIN_FIT_POINTS,
    LearnedPredictor,
    ResidualModel,
    features,
    learned_memory_headroom,
    select_records,
)
from repro.tune.store import RunStore, tuner_context
from tests.test_core_predictor import make_profiler
from tests.test_tune_store import make_record


class TestFeatures:
    def test_shape_and_determinism(self):
        f = features(4, 2)
        assert f.shape == (6,)
        assert (f == features(4, 2)).all()

    def test_log_quadratic_content(self):
        f = features(4, 2)
        assert f[0] == 1.0 and f[1] == 2.0 and f[2] == 1.0
        assert f[3] == 4.0 and f[4] == 1.0 and f[5] == 2.0


class TestResidualModelExactTier:
    def test_correction_is_measured_over_predicted(self):
        record = make_record(m=2, n=1, measured=0.8)
        model = ResidualModel.fit([record])
        assert model.correction(2, 1) == pytest.approx(0.8 / 0.4)

    def test_repeated_measurements_take_geometric_mean(self):
        records = [
            make_record(m=2, n=1, measured=0.2),
            make_record(m=2, n=1, measured=0.8),
        ]
        model = ResidualModel.fit(records)
        assert model.correction(2, 1) == pytest.approx(
            math.sqrt((0.2 / 0.4) * (0.8 / 0.4))
        )

    def test_same_context_records_shadow_transfer_records(self):
        mine = make_record(m=2, n=1, measured=0.8, context="mine")
        other = make_record(m=2, n=1, measured=0.1, context="other")
        model = ResidualModel.fit([mine, other], context="mine")
        assert model.correction(2, 1) == pytest.approx(0.8 / 0.4)

    def test_oom_records_veto(self):
        model = ResidualModel.fit(
            [make_record(m=8, n=2, measured=None, measured_peak_bytes=None, oom=True)]
        )
        assert model.known_oom(8, 2)
        assert not model.known_oom(2, 1)


class TestResidualModelFallbacks:
    def test_least_squares_above_threshold(self):
        # residual grows with log2(m): LS should extrapolate the trend
        records = [
            make_record(m=m, n=1, measured=0.4 * (1.0 + 0.1 * math.log2(m)))
            for m in (1, 2, 4, 8)
        ]
        model = ResidualModel.fit(records)
        assert model.coef is not None
        assert len(model.points) >= MIN_FIT_POINTS
        predicted = model.correction(16, 1)
        lo, hi = CORRECTION_CLIP
        assert lo <= predicted <= hi
        assert predicted > model.correction(16, 1) * 0.999  # deterministic

    def test_knn_below_threshold(self):
        records = [
            make_record(m=1, n=1, measured=0.4),  # ratio 1.0
            make_record(m=8, n=1, measured=0.8),  # ratio 2.0
        ]
        model = ResidualModel.fit(records)
        assert model.coef is None
        between = model.correction(2, 1)
        assert 1.0 < between < 2.0
        # closer to m=1 than to m=8 in log2 space
        assert between < model.correction(4, 1)

    def test_untrained_model_is_identity(self):
        model = ResidualModel.fit([])
        assert not model.trained
        assert model.correction(4, 2) == 1.0

    def test_corrections_clip(self):
        records = [
            make_record(m=m, n=1, measured=0.4 * 100.0 ** math.log2(max(m, 1)))
            for m in (1, 2, 4)
        ]
        model = ResidualModel.fit(records)
        lo, hi = CORRECTION_CLIP
        assert model.correction(64, 1) <= hi
        assert model.correction(64, 1) >= lo

    def test_fit_is_deterministic(self):
        records = [
            make_record(m=m, n=n, measured=0.3 + 0.05 * m + 0.02 * n)
            for m in (1, 2, 4)
            for n in (1, 2)
        ]
        a = ResidualModel.fit(records)
        b = ResidualModel.fit(list(reversed(records)))
        for m in (1, 2, 4, 8, 16):
            for n in (1, 2, 4):
                assert a.correction(m, n) == b.correction(m, n)


class TestSelectRecords:
    def _context(self):
        return tuner_context(make_profiler(), workload="awd")

    def test_exact_tier_includes_transfer_extras(self):
        ctx = self._context()
        exact = make_record(context=ctx.context, workload="awd", k=6, m=2)
        transfer = make_record(context="elsewhere", workload="awd", k=6, m=4)
        store = RunStore.from_records([exact, transfer])
        records, tier = select_records(store, ctx, "awd")
        assert tier == "exact"
        assert set(records) == {exact, transfer}

    def test_transfer_tier_matches_workload_and_k(self):
        ctx = self._context()
        match = make_record(context="elsewhere", workload="awd", k=6)
        wrong_k = make_record(context="elsewhere", workload="awd", k=2)
        wrong_wl = make_record(context="elsewhere", workload="bert", k=6)
        store = RunStore.from_records([match, wrong_k, wrong_wl])
        records, tier = select_records(store, ctx, "awd")
        assert tier == "transfer"
        assert set(records) == {match}

    def test_no_match_is_none_tier(self):
        ctx = self._context()
        store = RunStore.from_records([make_record(workload="bert", k=2)])
        records, tier = select_records(store, ctx, "awd")
        assert tier == "none" and records == ()


class TestMemoryHeadroom:
    def test_median_ratio_clipped_inflate_only(self):
        records = [
            make_record(m=m, cluster="c", measured_peak_bytes=r * 1.0e9)
            for m, r in ((1, 0.5), (2, 1.5), (4, 3.0))
        ]
        store = RunStore.from_records(records)
        assert learned_memory_headroom(store, "c") == pytest.approx(1.5)

    def test_underprediction_never_deflates(self):
        store = RunStore.from_records(
            [make_record(cluster="c", measured_peak_bytes=0.5e9)]
        )
        assert learned_memory_headroom(store, "c") == 1.0

    def test_clip_at_two(self):
        store = RunStore.from_records(
            [make_record(cluster="c", measured_peak_bytes=5.0e9)]
        )
        assert learned_memory_headroom(store, "c") == 2.0

    def test_no_store_or_no_match_is_exactly_one(self):
        assert learned_memory_headroom(None, "c") == 1.0
        store = RunStore.from_records([make_record(cluster="other")])
        assert learned_memory_headroom(store, "c") == 1.0


class TestLearnedPredictor:
    def _setup(self):
        profiler = make_profiler()
        profile = profiler.profile()
        return profiler, Predictor(profile)

    def test_empty_store_returns_analytic_winner_object(self):
        profiler, predictor = self._setup()
        ctx = tuner_context(profiler, workload="awd")
        analytic_winner, analytic_preds = predictor.best_setting(
            [1, 2, 4], [1, 2], 64 * 2**30
        )
        decision = LearnedPredictor(
            predictor, store=RunStore(), context=ctx, workload="awd"
        ).best_setting([1, 2, 4], [1, 2], 64 * 2**30)
        assert decision.winner == analytic_winner
        assert decision.predictions == analytic_preds
        assert decision.records_consulted == 0
        assert not decision.residual_applied

    def test_records_rerank_the_grid(self):
        profiler, predictor = self._setup()
        ctx = tuner_context(profiler, workload="awd")
        analytic_winner, _ = predictor.best_setting([1, 2, 4], [1, 2], 64 * 2**30)
        wm, wn = analytic_winner.m, analytic_winner.n
        # record the analytic winner as 10x slower than predicted
        slow = make_record(
            context=ctx.context,
            workload="awd",
            k=ctx.num_stages,
            m=wm,
            n=wn,
            predicted_batch_time=analytic_winner.batch_time,
            measured=analytic_winner.batch_time * 10.0,
        )
        decision = LearnedPredictor(
            predictor, store=RunStore.from_records([slow]), context=ctx, workload="awd"
        ).best_setting([1, 2, 4], [1, 2], 64 * 2**30)
        assert decision.residual_applied
        assert decision.records_consulted == 1
        assert (decision.winner.m, decision.winner.n) != (wm, wn)
        assert decision.analytic_winner == analytic_winner

    def test_oom_record_vetoes_winner(self):
        profiler, predictor = self._setup()
        ctx = tuner_context(profiler, workload="awd")
        analytic_winner, _ = predictor.best_setting([1, 2, 4], [1, 2], 64 * 2**30)
        oom = make_record(
            context=ctx.context,
            workload="awd",
            k=ctx.num_stages,
            m=analytic_winner.m,
            n=analytic_winner.n,
            measured=None,
            measured_peak_bytes=None,
            oom=True,
        )
        decision = LearnedPredictor(
            predictor, store=RunStore.from_records([oom]), context=ctx, workload="awd"
        ).best_setting([1, 2, 4], [1, 2], 64 * 2**30)
        assert (decision.winner.m, decision.winner.n) != (
            analytic_winner.m,
            analytic_winner.n,
        )

    def test_all_vetoed_falls_back_to_analytic(self):
        profiler, predictor = self._setup()
        ctx = tuner_context(profiler, workload="awd")
        records = [
            make_record(
                context=ctx.context,
                workload="awd",
                k=ctx.num_stages,
                m=m,
                n=n,
                measured=None,
                measured_peak_bytes=None,
                oom=True,
            )
            for m in (1, 2, 4)
            for n in (1, 2)
        ]
        decision = LearnedPredictor(
            predictor, store=RunStore.from_records(records), context=ctx, workload="awd"
        ).best_setting([1, 2, 4], [1, 2], 64 * 2**30)
        assert decision.winner == decision.analytic_winner
        assert not decision.residual_applied
