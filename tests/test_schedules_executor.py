"""Simulator executor: the paper's schedule behaviours on uniform stages.

These tests pin the qualitative claims of §4 / Figure 7 on a controlled
synthetic pipeline where they must hold exactly:

* time:   AFAB <= advance-FP <= 1F1B (communication exposure),
* memory: 1F1B <= advance-FP <= AFAB (activation stashing),
* advance-FP degenerates to the two extremes,
* OOM surfaces instead of deadlocking,
* comm/bubble accounting sums sensibly.
"""

import numpy as np
import pytest

from repro.schedules import (
    AFABSchedule,
    AdvanceFPSchedule,
    DataParallelSimRunner,
    OneFOneBSchedule,
    PipeDreamSchedule,
    PipelineSimRunner,
    StageCosts,
)
from repro.sim import ClusterSpec, Simulator, make_cluster

GIB = 2**30


def uniform_costs(k=6, fwd=4.0e6, act=2.0e6, stash=6.0e6, params=1_000_000):
    return StageCosts(
        fwd_flops=(fwd,) * k,
        act_out_bytes=(act,) * k,
        stash_bytes=(stash,) * k,
        param_bytes=(params,) * k,
    )


def run(schedule, costs=None, num_micro=16, mb_size=8.0, pipelines=1, memory=4 * GIB,
        iterations=2, reference=False, **runner_kwargs):
    sim = Simulator()
    cluster = make_cluster(
        sim, 6, spec=ClusterSpec(nodes=3, gpus_per_node=2, memory_bytes=memory)
    )
    runner = PipelineSimRunner(
        cluster,
        schedule,
        costs or uniform_costs(),
        num_micro=num_micro,
        mb_size=mb_size,
        num_pipelines=pipelines,
        with_reference_model=reference,
        **runner_kwargs,
    )
    return runner.run(iterations=iterations)


class TestPaperFigure7Shapes:
    def test_time_ordering_afab_advance_1f1b(self):
        t_afab = run(AFABSchedule()).batch_time
        t_adv = run(AdvanceFPSchedule(4)).batch_time
        t_1f1b = run(OneFOneBSchedule(versions=1)).batch_time
        assert t_afab < t_1f1b
        assert t_afab <= t_adv <= t_1f1b

    def test_memory_ordering_1f1b_advance_afab(self):
        m_afab = max(run(AFABSchedule()).peak_memory)
        m_adv = max(run(AdvanceFPSchedule(4)).peak_memory)
        m_1f1b = max(run(OneFOneBSchedule(versions=1)).peak_memory)
        assert m_1f1b < m_adv < m_afab

    def test_advance_monotone_in_time_and_memory(self):
        times, mems = [], []
        for adv in (0, 2, 4, 8):
            res = run(AdvanceFPSchedule(adv))
            times.append(res.batch_time)
            mems.append(max(res.peak_memory))
        assert times == sorted(times, reverse=True)  # more advance -> faster
        assert mems == sorted(mems)  # more advance -> more memory

    def test_advance_degeneracy_endpoints(self):
        t0 = run(AdvanceFPSchedule(0)).batch_time
        t_1f1b = run(OneFOneBSchedule(versions=1)).batch_time
        assert t0 == pytest.approx(t_1f1b, rel=1e-9)
        t_full = run(AdvanceFPSchedule(16)).batch_time
        t_afab = run(AFABSchedule()).batch_time
        assert t_full == pytest.approx(t_afab, rel=1e-9)

    def test_last_gpu_idle_reduced_by_advance(self):
        idle_1f1b = run(OneFOneBSchedule(versions=1)).last_device_idle
        idle_adv = run(AdvanceFPSchedule(6)).last_device_idle
        assert idle_adv < idle_1f1b

    def test_downstream_stages_stash_less_under_1f1b(self):
        res = run(OneFOneBSchedule(versions=1))
        data = res.data_memory_peak
        assert data[0] > data[-1]  # stage k stashes K-k
        assert data == sorted(data, reverse=True)


class TestParallelPipelines:
    def test_two_pipelines_increase_utilization(self):
        u1 = run(AdvanceFPSchedule(2), pipelines=1).avg_utilization
        u2 = run(AdvanceFPSchedule(2), pipelines=2).avg_utilization
        assert u2 > u1 * 1.3

    def test_per_batch_time_improves_with_second_pipeline(self):
        """The core AvgPipe effect: underutilized devices absorb a second
        pipeline cheaper than running batches serially."""
        r1 = run(AdvanceFPSchedule(2), pipelines=1)
        r2 = run(AdvanceFPSchedule(2), pipelines=2)
        assert r2.time_per_batch < r1.time_per_batch

    def test_diminishing_returns_in_pipeline_count(self):
        gains = []
        prev = run(AdvanceFPSchedule(2), pipelines=1).time_per_batch
        for n in (2, 3, 4):
            cur = run(AdvanceFPSchedule(2), pipelines=n).time_per_batch
            gains.append(prev / cur)
            prev = cur
        assert gains[0] > gains[-1]  # each extra pipeline helps less

    def test_weight_memory_scales_with_pipelines(self):
        r1 = run(AdvanceFPSchedule(0), pipelines=1)
        r2 = run(AdvanceFPSchedule(0), pipelines=2)
        assert r2.weight_memory[0] == pytest.approx(2 * r1.weight_memory[0], rel=0.01)

    def test_reference_model_adds_one_copy(self):
        base = run(AdvanceFPSchedule(0), pipelines=2, reference=False)
        with_ref = run(AdvanceFPSchedule(0), pipelines=2, reference=True)
        per_model = 1_000_000
        assert with_ref.weight_memory[0] - base.weight_memory[0] == per_model


class TestMemoryModel:
    def test_pipedream_versions_inflate_weights(self):
        r_pd = run(PipeDreamSchedule())
        r_sync = run(OneFOneBSchedule(versions=1))
        # Stage 0 holds K=6 versions vs 1.
        assert r_pd.weight_memory[0] > 2 * r_sync.weight_memory[0]

    def test_oom_reported_not_deadlocked(self):
        res = run(AFABSchedule(), memory=64 * 2**20, costs=uniform_costs(stash=64 * 2**20))
        assert res.oom is not None
        assert res.batch_time == float("inf")

    def test_weight_oom_reported(self):
        res = run(AFABSchedule(), memory=2 * 2**20, costs=uniform_costs(params=2**20))
        assert res.oom is not None

    def test_optimizer_state_factor_counts(self):
        adam = run(AdvanceFPSchedule(0), optimizer_state_factor=2.0)
        sgd = run(AdvanceFPSchedule(0), optimizer_state_factor=0.0)
        assert adam.weight_memory[0] == pytest.approx(3 * sgd.weight_memory[0], rel=0.01)


class TestAccounting:
    def test_decomposition_keys_and_positivity(self):
        res = run(OneFOneBSchedule(versions=1))
        for d in res.decomposition:
            assert set(d) == {"gpu", "com", "bub", "sync"}
            assert all(v >= 0 for v in d.values())

    def test_gpu_time_equals_compute_across_schedules(self):
        """T_gpu per device is schedule-independent (same work)."""
        g_afab = [d["gpu"] for d in run(AFABSchedule()).decomposition]
        g_1f1b = [d["gpu"] for d in run(OneFOneBSchedule(versions=1)).decomposition]
        assert g_afab == pytest.approx(g_1f1b, rel=0.05)

    def test_comm_sent_time_positive_for_inner_stages(self):
        res = run(AFABSchedule())
        assert all(c > 0 for c in res.comm_sent_time[:-1])

    def test_first_stage_has_no_bubble_on_forwards(self):
        """Stage 0 never waits for upstream; its idle is grad waits only,
        which AFAB concentrates at the F->B turn."""
        res = run(AFABSchedule())
        assert res.decomposition[0]["bub"] >= 0  # smoke: accounted, finite

    def test_iterations_average_consistently(self):
        r1 = run(OneFOneBSchedule(versions=1), iterations=1)
        r3 = run(OneFOneBSchedule(versions=1), iterations=3)
        # Steady state: per-iteration time within 5%.
        assert r3.batch_time == pytest.approx(r1.batch_time, rel=0.05)

    def test_timeline_renders(self):
        sim = Simulator()
        cluster = make_cluster(sim, 6, spec=ClusterSpec(nodes=3, gpus_per_node=2, memory_bytes=4 * GIB))
        runner = PipelineSimRunner(cluster, AFABSchedule(), uniform_costs(), 8, 8.0)
        res = runner.run(iterations=1, render_timeline=True)
        assert "GPU 1" in res.timeline


class TestDataParallelRunner:
    def _run(self, **kwargs):
        sim = Simulator()
        from repro.graph import LayerCost

        costs = [
            LayerCost(f"l{i}", flops_per_sample=1e5, activation_bytes_per_sample=1e4, param_bytes=200_000)
            for i in range(6)
        ]
        cluster = make_cluster(sim, 6, spec=ClusterSpec(nodes=3, gpus_per_node=2, memory_bytes=4 * GIB))
        return DataParallelSimRunner(cluster, costs, batch_size=48, **kwargs).run(iterations=2)

    def test_runs_and_reports(self):
        res = self._run()
        assert np.isfinite(res.batch_time)
        assert all(c > 0 for c in res.comm_sent_time)

    def test_memory_never_ooms_but_reports_footprint(self):
        sim = Simulator()
        from repro.graph import LayerCost

        costs = [LayerCost("big", 1e5, 1e4, param_bytes=10 * GIB)]
        cluster = make_cluster(sim, 2, spec=ClusterSpec(nodes=1, gpus_per_node=2, memory_bytes=GIB))
        res = DataParallelSimRunner(cluster, costs, batch_size=8).run(iterations=1)
        assert res.oom is None
        assert max(res.peak_memory) > GIB  # over-capacity footprint reported

    def test_allreduce_inefficiency_slows_comm(self):
        fast = self._run(allreduce_inefficiency=1.0)
        slow = self._run(allreduce_inefficiency=4.0)
        assert slow.batch_time > fast.batch_time
