"""Float64-promotion regression gate.

``DEFAULT_DTYPE`` is float32; under NumPy's NEP-50 rules a stray
``np.float64`` scalar (or an unannotated ``np.sqrt(...)`` constant) is
"strong" and silently promotes every downstream array to float64 —
doubling memory traffic without tripping any tolerance-based test.  Each
op in ``repro.tensor.functional`` (and the Tensor operator surface) gets
one regression test here: float32 in, float32 out, float32 gradients.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, assert_preserves_dtype, tensor
from repro.tensor import functional as F
from repro.tensor.tensor import DEFAULT_DTYPE


def _t(*shape, seed=0, grad=True):
    rng = np.random.default_rng(seed)
    return tensor(rng.standard_normal(shape), requires_grad=grad)


def _assert_float32_through_backward(out: Tensor, *inputs: Tensor) -> None:
    """Forward output AND every input gradient stay DEFAULT_DTYPE."""
    assert_preserves_dtype(out, *inputs)
    scalar = out.sum() if out.size > 1 else out
    scalar.backward()
    for idx, inp in enumerate(inputs):
        assert inp.grad is not None, f"input {idx} got no gradient"
        assert inp.grad.dtype == DEFAULT_DTYPE, (
            f"input {idx} gradient promoted to {inp.grad.dtype}"
        )


# --------------------------------------------------------------------- #
# functional ops, one test per op


@pytest.mark.parametrize("op", [F.relu, F.gelu, F.tanh, F.sigmoid])
def test_elementwise_ops_preserve_dtype(op):
    x = _t(4, 5)
    _assert_float32_through_backward(op(x), x)


@pytest.mark.parametrize("op", [F.softmax, F.log_softmax])
def test_softmax_family_preserves_dtype(op):
    x = _t(3, 7)
    _assert_float32_through_backward(op(x, axis=-1), x)


def test_layer_norm_preserves_dtype():
    x, w, b = _t(4, 8), _t(8, seed=1), _t(8, seed=2)
    _assert_float32_through_backward(F.layer_norm(x, w, b), x, w, b)


def test_dropout_preserves_dtype():
    x = _t(6, 6)
    out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
    _assert_float32_through_backward(out, x)


def test_embedding_lookup_preserves_dtype():
    w = _t(10, 4)
    idx = np.array([[1, 3], [7, 2]])
    _assert_float32_through_backward(F.embedding_lookup(w, idx), w)


def test_nll_loss_preserves_dtype():
    logp = F.log_softmax(_t(5, 9), axis=-1)
    targets = np.array([0, 3, 8, 1, 2])
    loss = F.nll_loss(logp, targets)
    assert loss.dtype == DEFAULT_DTYPE
    loss.backward()


def test_cross_entropy_preserves_dtype():
    x = _t(5, 9)
    loss = F.cross_entropy(x, np.array([0, 3, 8, 1, 2]), ignore_index=1)
    assert loss.dtype == DEFAULT_DTYPE
    loss.backward()
    assert x.grad.dtype == DEFAULT_DTYPE


def test_cat_preserves_dtype():
    a, b = _t(2, 3), _t(4, 3, seed=1)
    _assert_float32_through_backward(F.cat([a, b], axis=0), a, b)


def test_stack_preserves_dtype():
    a, b = _t(2, 3), _t(2, 3, seed=1)
    _assert_float32_through_backward(F.stack([a, b], axis=0), a, b)


def test_where_preserves_dtype():
    a, b = _t(4, 4), _t(4, 4, seed=1)
    cond = a.data > 0
    _assert_float32_through_backward(F.where(cond, a, b), a, b)


def test_linear_preserves_dtype():
    x, w, b = _t(3, 5), _t(4, 5, seed=1), _t(4, seed=2)
    _assert_float32_through_backward(F.linear(x, w, b), x, w, b)


def test_lstm_cell_preserves_dtype():
    B, I, H = 2, 3, 4
    x, h, c = _t(B, I), _t(B, H, seed=1), _t(B, H, seed=2)
    w_ih, w_hh = _t(4 * H, I, seed=3), _t(4 * H, H, seed=4)
    bias = _t(4 * H, seed=5)
    h2, c2 = F.lstm_cell(x, h, c, w_ih, w_hh, bias, H)
    assert_preserves_dtype((h2, c2), x, h, c, w_ih, w_hh, bias)
    (h2.sum() + c2.sum()).backward()
    for inp in (x, h, c, w_ih, w_hh, bias):
        assert inp.grad.dtype == DEFAULT_DTYPE


def test_scaled_dot_attention_preserves_dtype():
    B, Hd, T, D = 2, 2, 4, 3
    q, k, v = _t(B, Hd, T, D), _t(B, Hd, T, D, seed=1), _t(B, Hd, T, D, seed=2)
    out = F.scaled_dot_attention(q, k, v, scale=1.0 / np.sqrt(D).item())
    _assert_float32_through_backward(out, q, k, v)


# --------------------------------------------------------------------- #
# Tensor operator surface: Python-scalar arithmetic is the classic leak


@pytest.mark.parametrize(
    "expr",
    [
        lambda x: x + 1.5,
        lambda x: 1.5 + x,
        lambda x: x - 0.5,
        lambda x: 0.5 - x,
        lambda x: x * 2.0,
        lambda x: x / 3.0,
        lambda x: 2.0 / (x + 10.0),
        lambda x: x**2,
        lambda x: -x,
        lambda x: x.sum(),
        lambda x: x.mean(axis=0),
        lambda x: x.reshape(-1),
        lambda x: x.transpose(1, 0),
        lambda x: x[1:, :2],
    ],
    ids=[
        "add-scalar", "radd-scalar", "sub-scalar", "rsub-scalar",
        "mul-scalar", "div-scalar", "rdiv-scalar", "pow", "neg",
        "sum", "mean", "reshape", "transpose", "getitem",
    ],
)
def test_tensor_scalar_arithmetic_preserves_dtype(expr):
    x = _t(4, 3)
    _assert_float32_through_backward(expr(x), x)


def test_tensor_matmul_preserves_dtype():
    a, b = _t(3, 4), _t(4, 5, seed=1)
    _assert_float32_through_backward(a @ b, a, b)


def test_assert_preserves_dtype_flags_a_leak():
    x = _t(2, 2)
    promoted = Tensor(x.data.astype(np.float64))
    with pytest.raises(AssertionError, match="float-promotion leak"):
        assert_preserves_dtype(promoted, x)
    with pytest.raises(ValueError):
        assert_preserves_dtype(promoted)
