"""Partitioner: DP optimality (vs brute force), structure, fallbacks."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import LayerCost, Partition, partition_model, partition_uniform
from repro.graph.partitioner import bottleneck_time


def costs_from(flops, acts=None, params=None):
    acts = acts or [100.0] * len(flops)
    params = params or [10] * len(flops)
    return [
        LayerCost(name=f"l{i}", flops_per_sample=f, activation_bytes_per_sample=a, param_bytes=p)
        for i, (f, a, p) in enumerate(zip(flops, acts, params))
    ]


def brute_force(costs, k, bandwidth, comm_weight=0.5):
    n = len(costs)
    best, best_b = None, float("inf")
    for cuts in itertools.combinations(range(1, n), k - 1):
        boundaries = (0,) + cuts + (n,)
        worst = 0.0
        for s in range(k):
            lo, hi = boundaries[s], boundaries[s + 1]
            compute = sum(c.flops_per_sample for c in costs[lo:hi])
            comm = comm_weight * costs[lo - 1].activation_bytes_per_sample / bandwidth if lo > 0 else 0.0
            worst = max(worst, compute + comm)
        if worst < best_b:
            best, best_b = boundaries, worst
    return best, best_b


class TestPartitionStructure:
    def test_boundaries_validation(self):
        with pytest.raises(ValueError):
            Partition(boundaries=(0, 3, 3, 5))
        with pytest.raises(ValueError):
            Partition(boundaries=(1, 3))

    def test_stage_of_layer(self):
        p = Partition(boundaries=(0, 2, 5))
        assert p.stage_of_layer(0) == 0
        assert p.stage_of_layer(4) == 1
        with pytest.raises(IndexError):
            p.stage_of_layer(5)

    def test_uniform_partition_spreads_remainder(self):
        p = partition_uniform(10, 4)
        sizes = [hi - lo for lo, hi in (p.span(k) for k in range(4))]
        assert sorted(sizes) == [2, 2, 3, 3]
        assert sum(sizes) == 10

    def test_uniform_too_many_stages(self):
        with pytest.raises(ValueError):
            partition_uniform(3, 4)


class TestDPOptimality:
    def test_balances_equal_layers(self):
        costs = costs_from([100.0] * 8)
        p = partition_model(costs, 4, bandwidth_bytes_per_sec=1e12)
        sizes = [hi - lo for lo, hi in (p.span(k) for k in range(4))]
        assert sizes == [2, 2, 2, 2]

    def test_isolates_heavy_layer(self):
        costs = costs_from([10, 10, 1000, 10, 10])
        p = partition_model(costs, 3, bandwidth_bytes_per_sec=1e12)
        heavy_stage = p.stage_of_layer(2)
        lo, hi = p.span(heavy_stage)
        assert hi - lo == 1  # the 1000-flop layer gets its own stage

    def test_avoids_expensive_cut(self):
        # Cutting after layer 1 ships a huge activation; DP must cut elsewhere.
        costs = costs_from([100, 100, 100, 100], acts=[10, 1e9, 10, 10])
        p = partition_model(costs, 2, bandwidth_bytes_per_sec=1.0, flops_per_sec=1.0)
        assert 2 not in ()  # placeholder for clarity
        assert p.boundaries[1] != 2

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(4, 9),
        k=st.integers(2, 4),
        seed=st.integers(0, 10_000),
    )
    def test_matches_brute_force(self, n, k, seed):
        if k > n:
            return
        rng = np.random.default_rng(seed)
        costs = costs_from(
            rng.uniform(1, 100, size=n).tolist(),
            acts=rng.uniform(1, 50, size=n).tolist(),
        )
        bandwidth = 10.0
        p = partition_model(costs, k, bandwidth_bytes_per_sec=bandwidth, comm_weight=0.5)
        _, best_b = brute_force(costs, k, bandwidth)
        got = _objective(costs, p.boundaries, bandwidth)
        assert got == pytest.approx(best_b, rel=1e-9)

    def test_too_many_stages_raises(self):
        with pytest.raises(ValueError):
            partition_model(costs_from([1, 2]), 3)

    def test_zero_stages_raises(self):
        with pytest.raises(ValueError):
            partition_model(costs_from([1, 2]), 0)


def _objective(costs, boundaries, bandwidth, comm_weight=0.5):
    worst = 0.0
    for s in range(len(boundaries) - 1):
        lo, hi = boundaries[s], boundaries[s + 1]
        compute = sum(c.flops_per_sample for c in costs[lo:hi])
        comm = comm_weight * costs[lo - 1].activation_bytes_per_sample / bandwidth if lo > 0 else 0.0
        worst = max(worst, compute + comm)
    return worst


class TestBottleneckTime:
    def test_single_stage_is_total_compute(self):
        costs = costs_from([10, 20, 30])
        assert bottleneck_time(costs, [0, 3], 1e9) == pytest.approx(60)

    def test_includes_receive_comm(self):
        costs = costs_from([10, 10], acts=[1000, 10])
        t = bottleneck_time(costs, [0, 1, 2], bandwidth_bytes_per_sec=100.0)
        assert t == pytest.approx(10 + 1000 / 100.0)


class TestLayerCostValidation:
    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            LayerCost(name="x", flops_per_sample=-1, activation_bytes_per_sample=1, param_bytes=0)
