"""Partitioner: DP optimality (vs brute force), structure, fallbacks,
and the balanced/heterogeneous generalization's differential + property
suites (balanced == PipeDream DP bitwise on uniform input)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import LayerCost, Partition, partition_model, partition_uniform
from repro.graph.partitioner import (
    balanced_bottleneck,
    bottleneck_time,
    partition_balanced,
    search_partition_placement,
    search_placement,
    stage_memory_bytes,
)


def costs_from(flops, acts=None, params=None):
    acts = acts or [100.0] * len(flops)
    params = params or [10] * len(flops)
    return [
        LayerCost(name=f"l{i}", flops_per_sample=f, activation_bytes_per_sample=a, param_bytes=p)
        for i, (f, a, p) in enumerate(zip(flops, acts, params))
    ]


def brute_force(costs, k, bandwidth, comm_weight=0.5):
    n = len(costs)
    best, best_b = None, float("inf")
    for cuts in itertools.combinations(range(1, n), k - 1):
        boundaries = (0,) + cuts + (n,)
        worst = 0.0
        for s in range(k):
            lo, hi = boundaries[s], boundaries[s + 1]
            compute = sum(c.flops_per_sample for c in costs[lo:hi])
            comm = comm_weight * costs[lo - 1].activation_bytes_per_sample / bandwidth if lo > 0 else 0.0
            worst = max(worst, compute + comm)
        if worst < best_b:
            best, best_b = boundaries, worst
    return best, best_b


class TestPartitionStructure:
    def test_boundaries_validation(self):
        with pytest.raises(ValueError):
            Partition(boundaries=(0, 3, 3, 5))
        with pytest.raises(ValueError):
            Partition(boundaries=(1, 3))

    def test_stage_of_layer(self):
        p = Partition(boundaries=(0, 2, 5))
        assert p.stage_of_layer(0) == 0
        assert p.stage_of_layer(4) == 1
        with pytest.raises(IndexError):
            p.stage_of_layer(5)

    def test_uniform_partition_spreads_remainder(self):
        p = partition_uniform(10, 4)
        sizes = [hi - lo for lo, hi in (p.span(k) for k in range(4))]
        assert sorted(sizes) == [2, 2, 3, 3]
        assert sum(sizes) == 10

    def test_uniform_too_many_stages(self):
        with pytest.raises(ValueError):
            partition_uniform(3, 4)


class TestDPOptimality:
    def test_balances_equal_layers(self):
        costs = costs_from([100.0] * 8)
        p = partition_model(costs, 4, bandwidth_bytes_per_sec=1e12)
        sizes = [hi - lo for lo, hi in (p.span(k) for k in range(4))]
        assert sizes == [2, 2, 2, 2]

    def test_isolates_heavy_layer(self):
        costs = costs_from([10, 10, 1000, 10, 10])
        p = partition_model(costs, 3, bandwidth_bytes_per_sec=1e12)
        heavy_stage = p.stage_of_layer(2)
        lo, hi = p.span(heavy_stage)
        assert hi - lo == 1  # the 1000-flop layer gets its own stage

    def test_avoids_expensive_cut(self):
        # Cutting after layer 1 ships a huge activation; DP must cut elsewhere.
        costs = costs_from([100, 100, 100, 100], acts=[10, 1e9, 10, 10])
        p = partition_model(costs, 2, bandwidth_bytes_per_sec=1.0, flops_per_sec=1.0)
        assert 2 not in ()  # placeholder for clarity
        assert p.boundaries[1] != 2

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(4, 9),
        k=st.integers(2, 4),
        seed=st.integers(0, 10_000),
    )
    def test_matches_brute_force(self, n, k, seed):
        if k > n:
            return
        rng = np.random.default_rng(seed)
        costs = costs_from(
            rng.uniform(1, 100, size=n).tolist(),
            acts=rng.uniform(1, 50, size=n).tolist(),
        )
        bandwidth = 10.0
        p = partition_model(costs, k, bandwidth_bytes_per_sec=bandwidth, comm_weight=0.5)
        _, best_b = brute_force(costs, k, bandwidth)
        got = _objective(costs, p.boundaries, bandwidth)
        assert got == pytest.approx(best_b, rel=1e-9)

    def test_too_many_stages_raises(self):
        with pytest.raises(ValueError):
            partition_model(costs_from([1, 2]), 3)

    def test_zero_stages_raises(self):
        with pytest.raises(ValueError):
            partition_model(costs_from([1, 2]), 0)


def _objective(costs, boundaries, bandwidth, comm_weight=0.5):
    worst = 0.0
    for s in range(len(boundaries) - 1):
        lo, hi = boundaries[s], boundaries[s + 1]
        compute = sum(c.flops_per_sample for c in costs[lo:hi])
        comm = comm_weight * costs[lo - 1].activation_bytes_per_sample / bandwidth if lo > 0 else 0.0
        worst = max(worst, compute + comm)
    return worst


class TestBottleneckTime:
    def test_single_stage_is_total_compute(self):
        costs = costs_from([10, 20, 30])
        assert bottleneck_time(costs, [0, 3], 1e9) == pytest.approx(60)

    def test_includes_receive_comm(self):
        costs = costs_from([10, 10], acts=[1000, 10])
        t = bottleneck_time(costs, [0, 1, 2], bandwidth_bytes_per_sec=100.0)
        assert t == pytest.approx(10 + 1000 / 100.0)


class TestLayerCostValidation:
    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            LayerCost(name="x", flops_per_sample=-1, activation_bytes_per_sample=1, param_bytes=0)


def _random_costs(rng, n):
    return costs_from(
        rng.uniform(1e3, 5e6, size=n).tolist(),
        acts=rng.uniform(1e2, 1e6, size=n).tolist(),
        params=[int(p) for p in rng.uniform(1e2, 1e6, size=n)],
    )


class TestBalancedDifferential:
    """On uniform input the balanced DP must BE the PipeDream DP, bitwise."""

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(4, 14),
        k=st.integers(2, 6),
        seed=st.integers(0, 100_000),
        comm_weight=st.sampled_from([0.2, 0.5, 1.0]),
    )
    def test_uniform_input_is_bitwise_identical(self, n, k, seed, comm_weight):
        if k > n:
            return
        rng = np.random.default_rng(seed)
        costs = _random_costs(rng, n)
        bandwidth = float(rng.uniform(1e7, 1e10))
        flops_per_sec = float(rng.uniform(1e6, 1e9))
        reference = partition_model(
            costs, k, bandwidth_bytes_per_sec=bandwidth,
            flops_per_sec=flops_per_sec, comm_weight=comm_weight,
        )
        balanced = partition_balanced(
            costs, k, bandwidth_bytes_per_sec=bandwidth,
            flops_per_sec=flops_per_sec, comm_weight=comm_weight,
        )
        assert balanced.boundaries == reference.boundaries

    def test_unit_speeds_are_bitwise_identical(self):
        # x / 1.0 == x in IEEE-754, so explicit unit speeds change nothing.
        rng = np.random.default_rng(3)
        costs = _random_costs(rng, 12)
        reference = partition_model(costs, 4, bandwidth_bytes_per_sec=1e8)
        balanced = partition_balanced(
            costs, 4, device_speeds=[1.0] * 4, bandwidth_bytes_per_sec=1e8
        )
        assert balanced.boundaries == reference.boundaries

    def test_uniform_joint_search_degenerates_to_identity(self):
        rng = np.random.default_rng(11)
        costs = _random_costs(rng, 10)
        d = 4
        matrix = [
            [float("inf") if i == j else 1.25e8 for j in range(d)] for i in range(d)
        ]
        part, perm, _ = search_partition_placement(
            costs, d, device_speeds=[1.0] * d, bandwidth_matrix=matrix,
            flops_per_sec=2.0e8, comm_weight=0.2,
        )
        reference = partition_model(
            costs, d, bandwidth_bytes_per_sec=1.25e8,
            flops_per_sec=2.0e8, comm_weight=0.2,
        )
        assert part.boundaries == reference.boundaries
        assert perm == (0, 1, 2, 3)


def _hetero_instance(draw_seed, n, k):
    rng = np.random.default_rng(draw_seed)
    costs = _random_costs(rng, n)
    speeds = [round(float(s), 2) for s in rng.uniform(0.3, 1.0, size=k)]
    matrix = [
        [
            float("inf") if i == j else float(rng.uniform(1e7, 1e9))
            for j in range(k)
        ]
        for i in range(k)
    ]
    return costs, speeds, matrix


class TestBalancedProperties:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(5, 12), k=st.integers(2, 5), seed=st.integers(0, 100_000))
    def test_covers_every_layer_exactly_once(self, n, k, seed):
        if k > n:
            return
        costs, speeds, matrix = _hetero_instance(seed, n, k)
        part = partition_balanced(
            costs, k, device_speeds=speeds, bandwidth_bytes_per_sec=1e8,
            flops_per_sec=1e6,
        )
        owners = [part.stage_of_layer(layer) for layer in range(n)]
        assert sorted(set(owners)) == list(range(k))  # every stage non-empty
        spans = [part.span(s) for s in range(k)]
        covered = [layer for lo, hi in spans for layer in range(lo, hi)]
        assert covered == list(range(n))  # each layer exactly once, in order

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(5, 12), k=st.integers(2, 4), seed=st.integers(0, 100_000))
    def test_memory_caps_never_violated(self, n, k, seed):
        if k > n:
            return
        costs, speeds, _ = _hetero_instance(seed, n, k)
        total = sum(3.0 * c.param_bytes for c in costs)
        rng = np.random.default_rng(seed + 1)
        # generous-but-binding caps: each stage gets 40..120% of the mean
        caps = [total / k * float(rng.uniform(0.4, 1.2)) + 3.0 * max(c.param_bytes for c in costs) for _ in range(k)]
        try:
            part = partition_balanced(
                costs, k, device_speeds=speeds, bandwidth_bytes_per_sec=1e8,
                flops_per_sec=1e6, memory_caps=caps,
            )
        except RuntimeError:
            return  # infeasible caps are allowed to raise, never to overflow
        for stage, used in enumerate(stage_memory_bytes(costs, part.boundaries)):
            assert used <= caps[stage]

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(5, 12), k=st.integers(2, 5), seed=st.integers(0, 100_000))
    def test_never_worse_than_uniform_partition_on_same_spec(self, n, k, seed):
        if k > n:
            return
        costs, speeds, _ = _hetero_instance(seed, n, k)
        balanced = partition_balanced(
            costs, k, device_speeds=speeds, bandwidth_bytes_per_sec=1e8,
            flops_per_sec=1e6,
        )
        uniform = partition_uniform(n, k)

        def t(boundaries):
            return balanced_bottleneck(
                costs, boundaries, device_speeds=speeds,
                bandwidth_bytes_per_sec=1e8, flops_per_sec=1e6,
            )

        assert t(balanced.boundaries) <= t(uniform.boundaries)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(5, 10), k=st.integers(2, 5), seed=st.integers(0, 100_000))
    def test_placement_is_a_true_permutation(self, n, k, seed):
        if k > n:
            return
        costs, speeds, matrix = _hetero_instance(seed, n, k)
        part, perm, t = search_partition_placement(
            costs, k, device_speeds=speeds, bandwidth_matrix=matrix,
            flops_per_sec=1e6,
        )
        assert sorted(perm) == list(range(k))
        fixed_perm, fixed_t = search_placement(
            costs, part.boundaries, device_speeds=speeds,
            bandwidth_matrix=matrix, flops_per_sec=1e6,
        )
        assert sorted(fixed_perm) == list(range(k))

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(5, 10), k=st.integers(2, 5), seed=st.integers(0, 100_000))
    def test_joint_search_never_worse_than_identity_placement(self, n, k, seed):
        if k > n:
            return
        costs, speeds, matrix = _hetero_instance(seed, n, k)
        part, perm, t_joint = search_partition_placement(
            costs, k, device_speeds=speeds, bandwidth_matrix=matrix,
            flops_per_sec=1e6,
        )
        chain_bw = [float("inf")] + [matrix[i - 1][i] for i in range(1, k)]
        identity_part = partition_balanced(
            costs, k, device_speeds=speeds,
            bandwidth_bytes_per_sec=chain_bw, flops_per_sec=1e6,
        )
        t_identity = balanced_bottleneck(
            costs, identity_part.boundaries, device_speeds=speeds,
            bandwidth_bytes_per_sec=chain_bw, flops_per_sec=1e6,
        )
        assert t_joint <= t_identity + 1e-12

    def test_slow_device_gets_fewer_layers(self):
        costs = costs_from([100.0] * 8, acts=[1.0] * 8)
        part = partition_balanced(
            costs, 4, device_speeds=[1.0, 1.0, 0.25, 1.0],
            bandwidth_bytes_per_sec=1e12, flops_per_sec=1.0,
        )
        sizes = [hi - lo for lo, hi in (part.span(s) for s in range(4))]
        assert sizes[2] == 1  # the quarter-speed slot is given one layer
        # bottleneck is the slow slot's single layer (100/0.25 = 400),
        # half of the uniform cut's 2-layer slow stage (200/0.25 = 800)
        t = balanced_bottleneck(
            costs, part.boundaries, device_speeds=[1.0, 1.0, 0.25, 1.0],
            bandwidth_bytes_per_sec=1e12, flops_per_sec=1.0,
        )
        t_uniform = balanced_bottleneck(
            costs, (0, 2, 4, 6, 8), device_speeds=[1.0, 1.0, 0.25, 1.0],
            bandwidth_bytes_per_sec=1e12, flops_per_sec=1.0,
        )
        assert t == pytest.approx(400.0)
        assert t_uniform == pytest.approx(800.0)

    def test_infeasible_caps_raise(self):
        costs = costs_from([10.0] * 6, params=[1000] * 6)
        with pytest.raises(RuntimeError):
            partition_balanced(
                costs, 3, memory_caps=[1.0, 1.0, 1.0],
            )

    def test_speed_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            partition_balanced(costs_from([1, 2, 3]), 2, device_speeds=[1.0])

    def test_per_stage_bandwidth_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            partition_balanced(
                costs_from([1, 2, 3]), 2, bandwidth_bytes_per_sec=[1.0, 2.0, 3.0]
            )
