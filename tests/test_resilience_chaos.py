"""End-to-end chaos scenarios: the CI contract, exercised as tests.

The smoke scenario (crash 1 of N=3 mid-run) must recover via eviction
with nonzero time-to-detect / time-to-recover and a bounded loss delta;
the same seed with recovery disabled must fail.  One recovered run is
shared module-wide — these are the most expensive tests in the suite.
"""

import json

import pytest

from repro.cli import main
from repro.resilience import SCENARIOS, run_scenario


@pytest.fixture(scope="module")
def smoke():
    return run_scenario("smoke", seed=0, recovery=True)


@pytest.fixture(scope="module")
def smoke_norec():
    return run_scenario("smoke", seed=0, recovery=False)


class TestSmokeScenario:
    def test_recovers(self, smoke):
        assert smoke.failures == []
        assert smoke.recovered

    def test_sim_metrics_are_positive(self, smoke):
        assert smoke.sim["time_to_detect"] > 0
        assert smoke.sim["time_to_recover"] > 0
        assert 0 < smoke.sim["throughput_lost"] < 1
        assert [r["kind"] for r in smoke.sim["detected"]] == ["pipeline_crash"]

    def test_numerics_recovered_by_eviction(self, smoke):
        num = smoke.numerics
        assert num["pipelines_after"] == 2
        assert num["time_to_detect_rounds"] > 0
        assert num["time_to_recover_rounds"] > 0
        assert abs(num["loss_delta"]) <= num["loss_tolerance"]
        # Post-recovery framework still matches the sequential oracle bitwise.
        assert num["oracle_divergence"] == 0.0

    def test_timeline_names_the_recovery(self, smoke):
        assert any("evict" in line for line in smoke.timeline)

    def test_without_recovery_the_same_seed_fails(self, smoke_norec):
        assert not smoke_norec.recovered
        assert any("no recovery policy" in f for f in smoke_norec.failures)

    def test_deterministic_in_the_seed(self, smoke):
        again = run_scenario("smoke", seed=0, recovery=True)
        assert again.to_dict() == smoke.to_dict()


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_scenario("meteor-strike")


def test_scenario_catalogue_covers_every_fault_class():
    kinds = {s.kind for s in SCENARIOS.values()}
    assert kinds == {"pipeline_crash", "device_crash", "device_slowdown",
                     "link_partition"}


class TestChaosCli:
    def test_recovered_run_exits_zero(self, capsys):
        assert main(["chaos", "--scenario", "smoke", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "RECOVERED" in out

    def test_no_recovery_exits_nonzero(self, capsys):
        assert main(["chaos", "--scenario", "smoke", "--seed", "0",
                     "--no-recovery"]) == 1
        out = capsys.readouterr().out
        assert "UNRECOVERED" in out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["chaos", "--scenario", "smoke", "--seed", "0",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "smoke"
        assert payload["recovered"] is True
        assert payload["sim"]["time_to_detect"] > 0

    def test_list_exits_zero(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out
