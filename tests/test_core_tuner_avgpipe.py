"""Tuners (§5, Figures 18-19) and the AvgPipe facade end to end."""

import numpy as np
import pytest

from repro.core import AvgPipe, GuidelineTuner, ProfilingTuner, TraversalTuner
from repro.core.simcfg import calibration_for
from repro.core.tuner import default_m_candidates
from repro.baselines import BASELINE_SYSTEMS, choose_baseline_micro, simulate_baseline

from tests.test_core_predictor import make_profiler


class TestCandidateGrid:
    def test_default_m_candidates_divide_batch(self):
        for batch in (32, 40, 128):
            for m in default_m_candidates(batch):
                assert batch % m == 0

    def test_includes_extremes(self):
        cands = default_m_candidates(64)
        assert 1 in cands and 64 in cands


class TestProfilingVsTraversal:
    def test_profiling_much_cheaper_than_traversal(self):
        """Figure 18's claim: profiling cost is a small fraction of the
        traversal cost (paper: minutes vs hours)."""
        profiler = make_profiler()
        limit = 8 * 2**30
        prof = ProfilingTuner(profiler, limit).tune(n_candidates=[1, 2, 3])
        trav = TraversalTuner(profiler, limit).tune(n_candidates=[1, 2, 3])
        assert prof.tuning_cost < trav.tuning_cost / 5

    def test_profiling_close_to_traversal_quality(self):
        """Figure 19's claim: the profiled setting's measured per-batch
        time is near the traversal optimum (within 1.35x here)."""
        profiler = make_profiler()
        limit = 8 * 2**30
        prof = ProfilingTuner(profiler, limit).tune(n_candidates=[1, 2, 3])
        trav = TraversalTuner(profiler, limit).tune(n_candidates=[1, 2, 3])
        prof_pb = prof.measured_batch_time / prof.n
        trav_pb = trav.measured_batch_time / trav.n
        assert prof_pb <= trav_pb * 1.35

    def test_traversal_returns_feasible_best(self):
        profiler = make_profiler()
        outcome = TraversalTuner(profiler, 8 * 2**30).tune(
            m_candidates=[4, 8, 16], n_candidates=[1, 2]
        )
        assert (outcome.m, outcome.n) in [(m, n) for m in (4, 8, 16) for n in (1, 2)]
        assert np.isfinite(outcome.measured_batch_time)


class TestGuidelines:
    def test_max_num_sets_micro_batch_size_one(self):
        profiler = make_profiler(batch_size=32)
        outcome = GuidelineTuner(profiler, 8 * 2**30).tune("max-num", n_candidates=[1, 2])
        assert outcome.m == 32

    def test_max_size_sets_single_micro_batch(self):
        profiler = make_profiler(batch_size=32)
        outcome = GuidelineTuner(profiler, 8 * 2**30).tune("max-size", n_candidates=[1, 2])
        assert outcome.m == 1

    def test_unknown_guideline(self):
        with pytest.raises(ValueError):
            GuidelineTuner(make_profiler(), 1e12).tune("max-vibes")


class TestAvgPipeFacade:
    @pytest.fixture(scope="class")
    def gnmt_plan(self):
        system = AvgPipe("gnmt")
        return system, system.plan(n_candidates=[1, 2, 3])

    def test_plan_structure(self, gnmt_plan):
        _, plan = gnmt_plan
        assert plan.workload == "gnmt"
        assert plan.num_micro >= 1
        assert 1 <= plan.num_pipelines <= 3
        assert plan.advance >= 0
        assert plan.tuning_cost > 0

    def test_plan_prefers_parallel_pipelines_on_gnmt(self, gnmt_plan):
        """GNMT leaves GPUs underutilized at N=1; the tuner must choose
        N >= 2 (the paper tunes N=2)."""
        _, plan = gnmt_plan
        assert plan.num_pipelines >= 2

    def test_simulation_respects_memory_limit(self, gnmt_plan):
        system, plan = gnmt_plan
        result = system.simulate(plan, iterations=2)
        assert result.oom is None
        assert max(result.peak_memory) <= plan.memory_limit_bytes

    def test_plan_beats_gpipe_baseline_per_batch(self, gnmt_plan):
        """The headline: tuned AvgPipe beats GPipe per batch on GNMT."""
        system, plan = gnmt_plan
        ours = system.simulate(plan, iterations=2).time_per_batch
        cal = calibration_for("gnmt")
        gpipe = BASELINE_SYSTEMS["gpipe"]
        m = choose_baseline_micro(gpipe, cal)
        theirs = simulate_baseline(gpipe, cal, num_micro=m, iterations=2).time_per_batch
        assert ours < theirs

    def test_trainer_uses_planned_pipelines(self, gnmt_plan):
        system, plan = gnmt_plan
        trainer = system.trainer(plan, max_epochs=1)
        assert trainer.num_pipelines == plan.num_pipelines


class TestBaselineHelpers:
    def test_dapple_micro_pinned_near_device_count(self):
        cal = calibration_for("gnmt")
        m = choose_baseline_micro(BASELINE_SYSTEMS["dapple"], cal)
        assert 1 <= m <= cal.num_devices
        assert cal.batch_size % m == 0

    def test_pipedream_oom_on_bert(self):
        cal = calibration_for("bert")
        with pytest.raises(RuntimeError):
            choose_baseline_micro(BASELINE_SYSTEMS["pipedream"], cal)

    def test_data_parallel_runs_without_micro(self):
        cal = calibration_for("awd")
        res = simulate_baseline(BASELINE_SYSTEMS["pytorch"], cal, iterations=2)
        assert np.isfinite(res.batch_time)

    def test_unknown_baseline(self):
        from repro.baselines import baseline_by_name

        with pytest.raises(KeyError):
            baseline_by_name("horovod")
