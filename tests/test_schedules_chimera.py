"""Chimera bidirectional pipelines: mapping, memory and bubble behaviour."""

import numpy as np
import pytest

from repro.schedules import OneFOneBSchedule, PipelineSimRunner, StageCosts
from repro.schedules.chimera import chimera_device_map, simulate_chimera
from repro.sim import ClusterSpec, Simulator, make_cluster

GIB = 2**30


def uniform_costs(k=6):
    return StageCosts(
        fwd_flops=(4.0e6,) * k,
        act_out_bytes=(2.0e6,) * k,
        stash_bytes=(6.0e6,) * k,
        param_bytes=(1_000_000,) * k,
    )


def fresh_cluster(memory=8 * GIB):
    sim = Simulator()
    return make_cluster(sim, 6, spec=ClusterSpec(nodes=3, gpus_per_node=2, memory_bytes=memory))


class TestDeviceMap:
    def test_chimera_map_is_two_opposed_permutations(self):
        down, up = chimera_device_map(6)
        assert down == [0, 1, 2, 3, 4, 5]
        assert up == [5, 4, 3, 2, 1, 0]

    def test_invalid_map_rejected(self):
        with pytest.raises(ValueError):
            PipelineSimRunner(
                fresh_cluster(), OneFOneBSchedule(versions=1), uniform_costs(),
                num_micro=4, mb_size=8.0, num_pipelines=2,
                device_map=[[0, 1, 2, 3, 4, 5], [0, 0, 1, 2, 3, 4]],
            )

    def test_map_row_count_must_match_pipelines(self):
        with pytest.raises(ValueError):
            PipelineSimRunner(
                fresh_cluster(), OneFOneBSchedule(versions=1), uniform_costs(),
                num_micro=4, mb_size=8.0, num_pipelines=3,
                device_map=chimera_device_map(6),
            )


class TestChimeraBehaviour:
    def test_runs_and_reports_one_batch(self):
        res = simulate_chimera(fresh_cluster(), uniform_costs(), num_micro=16, mb_size=8.0,
                               iterations=2)
        assert res.oom is None
        assert res.num_pipelines == 1
        assert res.time_per_batch == res.batch_time

    def test_odd_micro_count_rejected(self):
        with pytest.raises(ValueError):
            simulate_chimera(fresh_cluster(), uniform_costs(), num_micro=5, mb_size=8.0)

    def test_faster_than_plain_1f1b(self):
        """Chimera's raison d'etre: opposed warmups fill each other's
        bubbles, beating a single 1F1B pipeline on the same batch."""
        chimera = simulate_chimera(fresh_cluster(), uniform_costs(), num_micro=16, mb_size=8.0,
                                   iterations=2)
        runner = PipelineSimRunner(
            fresh_cluster(), OneFOneBSchedule(versions=1), uniform_costs(),
            num_micro=16, mb_size=8.0, num_pipelines=1,
        )
        plain = runner.run(iterations=2)
        assert chimera.batch_time < plain.batch_time

    def test_double_weight_memory(self):
        """Each device hosts one down-stage and one up-stage replica."""
        chimera = simulate_chimera(fresh_cluster(), uniform_costs(), num_micro=8, mb_size=8.0)
        runner = PipelineSimRunner(
            fresh_cluster(), OneFOneBSchedule(versions=1), uniform_costs(),
            num_micro=8, mb_size=8.0, num_pipelines=1,
        )
        plain = runner.run(iterations=1)
        assert chimera.weight_memory[0] == pytest.approx(2 * plain.weight_memory[0], rel=0.01)

    def test_memory_balanced_across_devices(self):
        """Opposed placement balances the 1F1B stash skew: device 0 holds
        the deepest down-stash but the shallowest up-stash."""
        res = simulate_chimera(fresh_cluster(), uniform_costs(), num_micro=16, mb_size=8.0)
        stash = res.data_memory_peak
        assert max(stash) < 2.5 * min(stash)

    def test_reversed_single_pipeline_matches_forward(self):
        """Sanity: a lone pipeline on reversed devices has identical timing
        (the topology is symmetric)."""
        fwd = PipelineSimRunner(
            fresh_cluster(), OneFOneBSchedule(versions=1), uniform_costs(),
            num_micro=8, mb_size=8.0, num_pipelines=1,
        ).run(iterations=1)
        rev = PipelineSimRunner(
            fresh_cluster(), OneFOneBSchedule(versions=1), uniform_costs(),
            num_micro=8, mb_size=8.0, num_pipelines=1,
            device_map=[list(range(5, -1, -1))],
        ).run(iterations=1)
        assert rev.batch_time == pytest.approx(fwd.batch_time, rel=1e-9)
