"""`_unbroadcast` edge cases.

The gradient engine relies on `_unbroadcast(grad, shape)` being the exact
inverse of NumPy broadcasting for every legal broadcast — including the
shapes ordinary training never produces (zero-size dimensions, scalar
targets, grads with extra leading dims *and* interior 1-dims at once).
"""

import numpy as np

from repro.tensor.tensor import _unbroadcast


def _check(grad_shape, target_shape):
    """_unbroadcast must equal summing the broadcast axes explicitly."""
    rng = np.random.default_rng(hash((grad_shape, target_shape)) % 2**32)
    grad = rng.standard_normal(grad_shape).astype(np.float32)
    out = _unbroadcast(grad, target_shape)
    assert out.shape == target_shape
    # Reference: sum grad down by explicit axis arithmetic in float64.
    g = grad.astype(np.float64)
    extra = g.ndim - len(target_shape)
    if extra > 0:
        g = g.sum(axis=tuple(range(extra)))
    for i, s in enumerate(target_shape):
        if s == 1 and g.shape[i] != 1:
            g = g.sum(axis=i, keepdims=True)
    expect = g.reshape(target_shape)
    np.testing.assert_allclose(out, expect, rtol=2e-5, atol=1e-6)
    return out


def test_identity_shape_is_passthrough():
    grad = np.ones((3, 4), dtype=np.float32)
    assert _unbroadcast(grad, (3, 4)) is grad


def test_leading_broadcast_dims_are_summed():
    _check((6, 3, 4), (3, 4))
    _check((2, 5, 3, 4), (3, 4))


def test_interior_one_dims_are_summed_with_keepdims():
    _check((3, 4, 5), (3, 1, 5))
    _check((3, 4, 5), (1, 4, 1))


def test_ndim_mismatch_with_interior_one_dims():
    # Both reductions at once: drop the leading axes AND collapse the
    # interior 1-dims of the target.
    _check((2, 3, 4, 5), (3, 1, 5))
    _check((7, 2, 1, 6), (2, 1, 1))


def test_scalar_grad_targets():
    _check((), ())
    _check((3,), ())
    _check((2, 3), ())
    out = _unbroadcast(np.float32(2.5) * np.ones((4,), dtype=np.float32), ())
    assert out.shape == () and out == np.float32(10.0)


def test_zero_size_dimensions():
    # Summing over a zero-length broadcast axis yields exact zeros...
    out = _check((0, 4), (4,))
    np.testing.assert_array_equal(out, np.zeros(4))
    # ...and zero-size targets survive the keepdims path untouched.
    _check((3, 0), (1, 0))
    _check((5, 0, 2), (0, 2))
    out = _unbroadcast(np.empty((2, 0), dtype=np.float32), (2, 0))
    assert out.shape == (2, 0)


def test_one_dim_grad_against_one_dim_target():
    # grad dim already 1 where the target is 1: no summing, only reshape.
    grad = np.ones((1, 5), dtype=np.float32)
    out = _unbroadcast(grad, (1, 5))
    assert out is grad
    out = _unbroadcast(np.ones((3, 1, 5), dtype=np.float32), (1, 5))
    assert out.shape == (1, 5)
    np.testing.assert_array_equal(out, np.full((1, 5), 3.0))
