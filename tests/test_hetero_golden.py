"""Golden regression test for the heterogeneous-clusters artifact.

The benchmark suite regenerates ``benchmarks/results/hetero_clusters.txt``
on every run; this test pins it.  It re-runs the experiment at the
benchmark's full scale, re-renders the table exactly the way the
benchmark does, and compares byte-for-byte against the checked-in
artifact — any drift in the cluster model, the balanced-partition DP,
the placement search, or the simulator on heterogeneous specs fails
loudly here instead of silently rewriting the golden on the next
benchmark run.
"""

import pathlib

from repro.experiments import run_hetero
from repro.utils import format_table

GOLDEN = (
    pathlib.Path(__file__).parent.parent
    / "benchmarks"
    / "results"
    / "hetero_clusters.txt"
)


def render_hetero() -> str:
    """Render the artifact exactly as benchmarks/test_hetero_clusters.py emits it."""
    data = run_hetero()
    table = format_table(
        ["workload", "variant", "strategy", "boundaries", "placement", "batch time (ms)", "speedup"],
        [
            [
                r.workload,
                r.variant,
                r.strategy,
                str(r.boundaries),
                str(r.placement),
                "OOM" if r.oom else r.batch_time * 1e3,
                r.speedup_vs_uniform,
            ]
            for r in data["rows"]
        ],
        title="Heterogeneous clusters — planning strategies on GNMT",
    )
    return table + "\n"


def test_hetero_artifact_matches_golden():
    assert GOLDEN.exists(), f"golden artifact missing: {GOLDEN}"
    fresh = render_hetero()
    golden = GOLDEN.read_text()
    assert fresh == golden, (
        "hetero artifact drifted from benchmarks/results/hetero_clusters.txt; "
        "if the change is intentional, regenerate it with "
        "`PYTHONPATH=src python -m pytest benchmarks/test_hetero_clusters.py`"
    )


def test_hetero_render_is_deterministic():
    assert render_hetero() == render_hetero()
