"""Faithful stage-sliced pipeline execution.

The load-bearing guarantee: slicing a model into stages, shipping
activations as data and running backward as gradient bundles reproduces
the whole-model pass *exactly* (same loss, same gradients, same updated
weights) for synchronous schedules — and implements PipeDream's
weight-stashing semantics for the asynchronous one.
"""

import numpy as np
import pytest

from repro.core.pipeline import PipelinedRunner, StageRuntime
from repro.data.dataset import split_microbatches
from repro.graph.partitioner import Partition, partition_uniform
from repro.models import AWDConfig, BertConfig, GNMTConfig, build_awd_lstm, build_bert, build_gnmt
from repro.optim import SGD
from repro.schedules import AFABSchedule, AdvanceFPSchedule, OneFOneBSchedule, PipeDreamSchedule

GNMT_CFG = GNMTConfig(vocab_size=16, embed_dim=8, hidden_dim=12, encoder_layers=3,
                      decoder_layers=2, src_len=6, tgt_len=6, dropout=0.0)
BERT_CFG = BertConfig(vocab_size=16, d_model=8, num_heads=2, num_blocks=4, d_ff=16,
                      seq_len=9, num_classes=3, dropout=0.0)
AWD_CFG = AWDConfig(vocab_size=10, embed_dim=8, hidden_dim=12, num_layers=2, bptt=5,
                    dropout=0.0, weight_drop=0.0)


def gnmt_batch(n=8, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "src": rng.integers(4, 16, size=(n, 6)),
        "tgt_in": rng.integers(4, 16, size=(n, 6)),
        "tgt_out": rng.integers(4, 16, size=(n, 6)),
    }


def bert_batch(n=8, seed=1):
    rng = np.random.default_rng(seed)
    return {"tokens": rng.integers(4, 16, size=(n, 9)), "labels": rng.integers(0, 3, size=n)}


def whole_model_reference(model, batch):
    """Loss and 1/1-scaled gradients from a plain whole-model pass."""
    model.zero_grad()
    loss = model.loss(batch)
    loss.backward()
    grads = {name: p.grad.copy() for name, p in model.named_parameters()}
    model.zero_grad()
    return float(loss.item()), grads


def pipeline_grads(runner):
    out = {}
    for stage in runner.stages:
        for name, p in stage.named_parameters():
            out[name] = None if p.grad is None else p.grad.copy()
    return out


def match_grad_maps(model, runner, reference, atol=2e-5):
    """Compare whole-model grads to per-stage grads (name translation)."""
    stage_grads = pipeline_grads(runner)
    # Stage names: stage{k}.layer{i}.<param>; model names: layer{j}.<param>
    flat_model = list(reference.items())
    flat_stage = sorted(stage_grads.items())
    assert len(flat_model) == len(flat_stage)
    # Parameters appear in the same layer order in both traversals.
    for (m_name, m_grad), (s_name, s_grad) in zip(flat_model, sorted_stage_order(runner)):
        assert s_grad is not None, s_name
        assert np.allclose(m_grad, s_grad, atol=atol), (m_name, s_name,
                                                        np.abs(m_grad - s_grad).max())


def sorted_stage_order(runner):
    for stage in runner.stages:
        for name, p in stage.named_parameters():
            yield name, (None if p.grad is None else p.grad.copy())


class TestEquivalenceWithWholeModel:
    @pytest.mark.parametrize("schedule", [AFABSchedule(), OneFOneBSchedule(versions=1),
                                          AdvanceFPSchedule(2)],
                             ids=["afab", "1f1b", "advance"])
    @pytest.mark.parametrize("builder,cfg,batch_fn", [
        (build_gnmt, GNMT_CFG, gnmt_batch),
        (build_bert, BERT_CFG, bert_batch),
    ], ids=["gnmt", "bert"])
    def test_loss_and_gradients_match(self, schedule, builder, cfg, batch_fn):
        model = builder(cfg).seed(0)
        batch = batch_fn()
        ref_loss, ref_grads = whole_model_reference(model, batch)

        num_stages = 3
        partition = partition_uniform(len(model.layers), num_stages)
        runner = PipelinedRunner(model, partition, schedule)
        micros = split_microbatches(batch, 4)
        pipe_loss = runner.run_batch(micros)

        assert pipe_loss == pytest.approx(ref_loss, rel=1e-4)
        match_grad_maps(model, runner, ref_grads)

    def test_single_stage_degenerates_to_whole_model(self):
        model = build_bert(BERT_CFG).seed(2)
        batch = bert_batch(seed=5)
        ref_loss, ref_grads = whole_model_reference(model, batch)
        runner = PipelinedRunner(model, Partition(boundaries=(0, len(model.layers))),
                                 AFABSchedule())
        pipe_loss = runner.run_batch(split_microbatches(batch, 2))
        assert pipe_loss == pytest.approx(ref_loss, rel=1e-5)
        match_grad_maps(model, runner, ref_grads)

    def test_optimizer_step_matches_whole_model_sgd(self):
        """One pipelined SGD step == one whole-model SGD step."""
        batch = bert_batch(seed=7)
        model_a = build_bert(BERT_CFG).seed(3)
        model_b = build_bert(BERT_CFG).seed(9)
        model_b.load_state_dict(model_a.state_dict())

        # Whole-model step.
        model_a.zero_grad()
        model_a.loss(batch).backward()
        from repro.optim import SGD as _SGD

        opt = _SGD(model_a.parameters(), lr=0.1)
        opt.clip_grad_norm(5.0)
        opt.step()

        # Pipelined step.
        partition = partition_uniform(len(model_b.layers), 3)
        runner = PipelinedRunner(
            model_b, partition, OneFOneBSchedule(versions=1),
            optimizer_factory=lambda params: SGD(params, lr=0.1),
        )
        runner.run_batch(split_microbatches(batch, 4))

        sa, sb = model_a.state_dict(), model_b.state_dict()
        for key in sa:
            assert np.allclose(sa[key], sb[key], atol=5e-5), key


class TestStageRuntime:
    def test_double_forward_same_micro_rejected(self):
        model = build_bert(BERT_CFG)
        stage = StageRuntime(model.layers[:2], 0, 3)
        stage.forward(0, bert_batch(n=2))
        with pytest.raises(RuntimeError):
            stage.forward(0, bert_batch(n=2))

    def test_backward_without_forward_rejected(self):
        model = build_bert(BERT_CFG)
        stage = StageRuntime(model.layers[:2], 0, 3)
        with pytest.raises(RuntimeError):
            stage.backward(0, {})

    def test_in_flight_accounting(self):
        model = build_bert(BERT_CFG)
        stage = StageRuntime(model.layers[:-1], 0, 2)
        stage.forward(0, bert_batch(n=2, seed=3))
        stage.forward(1, bert_batch(n=2, seed=4))
        assert stage.in_flight == 2

    def test_carried_tensor_gradient_routes_through(self):
        """A tensor that a stage merely passes through must still carry
        gradient back to its producer (GNMT's enc_out across stages)."""
        model = build_gnmt(GNMT_CFG).seed(1)
        batch = gnmt_batch(n=4, seed=2)
        ref_loss, ref_grads = whole_model_reference(model, batch)
        # Cut so that enc_out crosses at least two boundaries.
        partition = partition_uniform(len(model.layers), 4)
        runner = PipelinedRunner(model, partition, AFABSchedule())
        pipe_loss = runner.run_batch(split_microbatches(batch, 2))
        assert pipe_loss == pytest.approx(ref_loss, rel=1e-4)
        match_grad_maps(model, runner, ref_grads)


class TestPipeDreamSemantics:
    def test_gradients_use_forward_time_weights(self):
        """Weight stashing: a micro-batch backwarded after an update must
        produce the gradient of its *forward-time* weights."""
        model = build_bert(BERT_CFG).seed(4)
        partition = partition_uniform(len(model.layers), 2)
        runner = PipelinedRunner(model, partition, PipeDreamSchedule(),
                                 optimizer_factory=lambda ps: SGD(ps, lr=0.5))
        stage0 = runner.stages[0]

        batch = bert_batch(n=4, seed=8)
        micros = split_microbatches(batch, 2)
        weights_before = stage0.state_dict()
        runner.run_batch(micros)
        weights_after = stage0.state_dict()
        # Async mode must have moved the weights (per-micro updates)...
        changed = any(
            not np.array_equal(weights_before[k], weights_after[k]) for k in weights_before
        )
        assert changed
        # ...and left no stale stash behind.
        assert stage0.in_flight == 0
        assert not stage0._weight_stash

    def test_async_updates_differ_from_sync(self):
        batch = bert_batch(n=4, seed=9)

        def run(schedule):
            model = build_bert(BERT_CFG).seed(5)
            partition = partition_uniform(len(model.layers), 2)
            runner = PipelinedRunner(model, partition, schedule,
                                     optimizer_factory=lambda ps: SGD(ps, lr=0.5))
            runner.run_batch(split_microbatches(batch, 2))
            return model.state_dict()

        sync_state = run(OneFOneBSchedule(versions=1))
        async_state = run(PipeDreamSchedule())
        assert any(not np.allclose(sync_state[k], async_state[k]) for k in sync_state)


class TestFaithfulAvgPipeTrainer:
    def test_faithful_mode_matches_whole_model_mode(self):
        """With dropout off and a synchronous schedule, the stage-sliced
        AvgPipe trainer follows the exact same weight trajectory as the
        default whole-model trainer."""
        from repro.core.trainer import AvgPipeTrainer
        from tests.test_core_trainers import tiny_awd_spec

        spec = tiny_awd_spec()
        model_layers = spec.build_model().layers
        partition = partition_uniform(len(model_layers), 2)

        plain = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=2)
        plain.train()

        faithful = AvgPipeTrainer(
            spec, seed=0, max_epochs=1, num_pipelines=2,
            partition=partition, num_micro=2, schedule=OneFOneBSchedule(versions=1),
        )
        faithful.train()

        for m1, m2 in zip(plain.models, faithful.models):
            s1, s2 = m1.state_dict(), m2.state_dict()
            for key in s1:
                assert np.allclose(s1[key], s2[key], atol=3e-5), key

    def test_faithful_mode_handles_ragged_micro_counts(self):
        from repro.core.trainer import AvgPipeTrainer
        from tests.test_core_trainers import tiny_awd_spec

        spec = tiny_awd_spec(batch_size=6)  # 6 samples: num_micro=4 -> falls to 3
        model_layers = spec.build_model().layers
        partition = partition_uniform(len(model_layers), 2)
        trainer = AvgPipeTrainer(
            spec, seed=0, max_epochs=1, num_pipelines=2,
            partition=partition, num_micro=4,
        )
        result = trainer.train()
        assert np.isfinite(result.final_metric)
