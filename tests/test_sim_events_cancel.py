"""Event cancellation under lazy tombstoning + heap compaction.

`cancel()` tombstones an entry in place: O(1), clock-invisible, dropped
at pop time.  When tombstones outnumber live entries the heap is rebuilt
between pops.  These tests pin the semantics the tuned queue must keep:

* a cancelled event never fires and never advances the clock, whatever
  its position relative to live entries (cancel-then-pop ordering);
* cancelling *everything* drains to an empty heap with the clock parked;
* compaction changes nothing observable — same firing order, same
  timestamps, same final clock as an untuned queue;
* succeed-early (superseded) entries still advance the clock — only
  ``cancel()`` is invisible;
* cancel of a fired event raises; double-cancel is a no-op.
"""

import pytest

from repro.sim.events import _COMPACT_MIN_TOMBSTONES, Event, Simulator


def _named_timeout(sim, delay, name, fired):
    ev = sim.timeout(delay, name=name)
    ev.add_callback(lambda e: fired.append((sim.now, e.name)))
    return ev


# --------------------------------------------------------------------- #
# cancel-then-pop ordering


def test_cancelled_event_never_fires_and_never_advances_clock():
    sim = Simulator()
    fired = []
    first = _named_timeout(sim, 1.0, "a", fired)
    _named_timeout(sim, 2.0, "b", fired)
    first.cancel()
    assert sim.run() == 2.0
    assert fired == [(2.0, "b")]


def test_cancel_ahead_of_earlier_live_event_keeps_order():
    # The tombstone sits at the *top* of the heap; popping it must not
    # disturb the live entries behind it.
    sim = Simulator()
    fired = []
    doomed = _named_timeout(sim, 0.5, "doomed", fired)
    _named_timeout(sim, 1.0, "x", fired)
    _named_timeout(sim, 1.0, "y", fired)  # same-timestamp batch path
    _named_timeout(sim, 3.0, "z", fired)
    doomed.cancel()
    assert sim.run() == 3.0
    assert fired == [(1.0, "x"), (1.0, "y"), (3.0, "z")]


def test_cancel_inside_same_timestamp_batch():
    # Cancel an entry tied at the same instant as live ones: the batch
    # drain must skip it without re-peeking or firing it.
    sim = Simulator()
    fired = []
    _named_timeout(sim, 1.0, "x", fired)
    mid = _named_timeout(sim, 1.0, "mid", fired)
    _named_timeout(sim, 1.0, "y", fired)
    mid.cancel()
    sim.run()
    assert fired == [(1.0, "x"), (1.0, "y")]


# --------------------------------------------------------------------- #
# empty-heap drain


def test_cancelling_everything_drains_with_clock_parked():
    sim = Simulator()
    events = [sim.timeout(float(i + 1)) for i in range(10)]
    for ev in events:
        ev.cancel()
    assert sim.run() == 0.0
    assert sim._heap == [] or all(e.cancelled for _, _, e in sim._heap)
    assert all(not ev.triggered for ev in events)


def test_mass_cancel_beyond_compaction_threshold_drains_empty():
    # Enough tombstones to trip compaction with nothing live behind them.
    sim = Simulator()
    events = [sim.timeout(float(i)) for i in range(_COMPACT_MIN_TOMBSTONES * 3)]
    for ev in events:
        ev.cancel()
    assert sim.run() == 0.0


# --------------------------------------------------------------------- #
# compaction invisibility


def test_compaction_is_invisible_to_firing_order_and_clock():
    """A cancel-heavy run fires the exact same (time, name) sequence as a
    fresh simulator holding only the surviving events."""

    def build(cancel: bool):
        sim = Simulator()
        fired = []
        doomed = []
        n = _COMPACT_MIN_TOMBSTONES * 4
        for i in range(n):
            ev = _named_timeout(sim, float(i) + 0.5, f"ev{i}", fired)
            if i % 4 != 0:  # 75% cancelled -> compaction triggers mid-run
                doomed.append(ev)
            if not cancel and i % 4 != 0:
                # The control run never schedules the doomed ones at all.
                sim._heap.pop()
                ev.callbacks = None
        if cancel:
            for ev in doomed:
                ev.cancel()
        end = sim.run()
        return end, fired

    end_a, fired_a = build(cancel=True)
    end_b, fired_b = build(cancel=False)
    assert fired_a == fired_b
    assert end_a == end_b


def test_compaction_keeps_interleaved_cancels_correct():
    # Cancels interleaved with live events across many timestamps, driven
    # well past the compaction threshold while the run is in flight.
    sim = Simulator()
    fired = []
    live_times = []
    seq = 0
    for round_no in range(8):
        batch = []
        for i in range(_COMPACT_MIN_TOMBSTONES):
            t = float(seq)
            seq += 1
            batch.append((_named_timeout(sim, t, f"e{seq}", fired), t))
        # cancel all but two per round
        for ev, t in batch[:-2]:
            ev.cancel()
        live_times.extend(t for _, t in batch[-2:])
    sim.run()
    assert [t for t, _ in fired] == sorted(live_times)


def test_succeeded_early_events_still_advance_the_clock():
    # Only cancel() is clock-invisible: an event succeeded before its
    # scheduled pop still advances `now` when its heap entry drains.
    sim = Simulator()
    ev = sim.timeout(5.0, name="late")
    ev.succeed("early")  # fires immediately, entry remains queued
    assert ev.triggered
    assert sim.run() == 5.0  # the queued pop still moves the clock


# --------------------------------------------------------------------- #
# cancel state machine


def test_cancel_of_fired_event_raises():
    sim = Simulator()
    ev = Event(sim, name="done").succeed()
    with pytest.raises(RuntimeError, match="cannot cancel fired"):
        ev.cancel()


def test_succeed_of_cancelled_event_raises():
    sim = Simulator()
    ev = sim.timeout(1.0).cancel()
    with pytest.raises(RuntimeError, match="cancelled"):
        ev.succeed()


def test_double_cancel_is_a_noop_and_counts_one_tombstone():
    sim = Simulator()
    ev = sim.timeout(1.0)
    before = sim._tombstones
    ev.cancel()
    ev.cancel()
    assert sim._tombstones == before + 1
    assert sim.run() == 0.0


def test_run_until_process_skips_tombstones():
    sim = Simulator()
    for i in range(_COMPACT_MIN_TOMBSTONES * 2):
        sim.timeout(0.25 * i).cancel()

    def job():
        yield sim.timeout(7.0)
        return "ok"

    proc = sim.process(job(), name="job")
    assert sim.run_until_process(proc) == 7.0
    assert proc.value == "ok"


def test_run_until_process_deadlocks_when_only_tombstones_remain():
    sim = Simulator()
    gate = Event(sim, name="never")

    def job():
        yield gate

    proc = sim.process(job(), name="stuck")
    sim.timeout(1.0).cancel()
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run_until_process(proc)
