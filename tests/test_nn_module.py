"""Module base-class machinery: registration, state dicts, modes."""

import numpy as np
import pytest

from repro.nn import Dropout, Linear, Module, ModuleList, Parameter, Sequential
from repro.tensor import Tensor


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.fc2 = Linear(8, 2)
        self.scale = Parameter(np.ones(1, dtype=np.float32))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


class TestRegistration:
    def test_named_parameters_are_prefixed(self):
        names = dict(TwoLayer().named_parameters())
        assert "fc1.weight" in names
        assert "fc2.bias" in names
        assert "scale" in names

    def test_num_parameters(self):
        m = TwoLayer()
        assert m.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_parameter_bytes(self):
        m = Linear(4, 4, bias=False)
        assert m.parameter_bytes() == 16 * 4

    def test_modules_traversal(self):
        m = TwoLayer()
        kinds = [type(x).__name__ for x in m.modules()]
        assert kinds == ["TwoLayer", "Linear", "Linear"]


class TestStateDict:
    def test_roundtrip(self):
        m1, m2 = TwoLayer(), TwoLayer()
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        m = TwoLayer()
        state = m.state_dict()
        state["scale"][...] = 99.0
        assert m.scale.data[0] == 1.0

    def test_load_copies_not_aliases(self):
        m = TwoLayer()
        state = m.state_dict()
        m.load_state_dict(state)
        state["scale"][...] = 42.0
        assert m.scale.data[0] == 1.0

    def test_missing_key_raises(self):
        m = TwoLayer()
        state = m.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        m = TwoLayer()
        state = m.state_dict()
        state["scale"] = np.ones(3, dtype=np.float32)
        with pytest.raises(ValueError):
            m.load_state_dict(state)


class TestModes:
    def test_train_eval_propagates(self):
        m = Sequential(Linear(2, 2), Dropout(0.5))
        m.eval()
        assert all(not child.training for child in m.modules())
        m.train()
        assert all(child.training for child in m.modules())

    def test_zero_grad_clears_all(self):
        m = TwoLayer()
        out = m(Tensor(np.ones((1, 4), np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())

    def test_seed_changes_dropout_stream_not_weights(self):
        m = Sequential(Linear(4, 4), Dropout(0.5))
        before = m.state_dict()
        m.seed(123)
        after = m.state_dict()
        for k in before:
            assert np.array_equal(before[k], after[k])


class TestContainers:
    def test_sequential_applies_in_order(self):
        a, b = Linear(3, 3, bias=False), Linear(3, 3, bias=False)
        a.weight.data = np.eye(3, dtype=np.float32) * 2
        b.weight.data = np.eye(3, dtype=np.float32) * 5
        out = Sequential(a, b)(Tensor(np.ones((1, 3), np.float32)))
        assert np.allclose(out.data, 10.0)

    def test_sequential_slicing(self):
        seq = Sequential(Linear(2, 2), Linear(2, 2), Linear(2, 2))
        assert len(seq[1:]) == 2

    def test_sequential_rejects_non_module(self):
        with pytest.raises(TypeError):
            Sequential("not a module")

    def test_module_list_registers_params(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(list(ml.parameters())) == 4

    def test_module_list_has_no_forward(self):
        with pytest.raises(RuntimeError):
            ModuleList([Linear(2, 2)])(None)
