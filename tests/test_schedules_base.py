"""Schedule op-stream invariants, including the paper's degeneracy claims."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.schedules import (
    AFABSchedule,
    AdvanceFPSchedule,
    OneFOneBSchedule,
    PipeDreamSchedule,
    StageOp,
    schedule_by_name,
)

ALL_SCHEDULES = [
    AFABSchedule(),
    OneFOneBSchedule(versions=1),
    OneFOneBSchedule(versions=2),
    AdvanceFPSchedule(0),
    AdvanceFPSchedule(2),
    AdvanceFPSchedule(100),
    PipeDreamSchedule(),
]


def stream_is_valid(ops, num_micro):
    fwd_seen, bwd_seen = [], []
    for op in ops:
        if op.kind == "fwd":
            fwd_seen.append(op.micro)
        else:
            bwd_seen.append(op.micro)
            assert op.micro in fwd_seen, "backward before forward"
    assert fwd_seen == list(range(num_micro)), "forwards out of order or missing"
    assert bwd_seen == list(range(num_micro)), "backwards out of order or missing"


class TestStreamInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        sched_idx=st.integers(0, len(ALL_SCHEDULES) - 1),
        num_stages=st.integers(1, 8),
        stage=st.integers(0, 7),
        num_micro=st.integers(1, 32),
    )
    def test_every_stream_is_valid(self, sched_idx, num_stages, stage, num_micro):
        if stage >= num_stages:
            return
        sched = ALL_SCHEDULES[sched_idx]
        ops = sched.stage_ops(stage, num_stages, num_micro)
        assert len(ops) == 2 * num_micro
        stream_is_valid(ops, num_micro)

    def test_invalid_stage_rejected(self):
        with pytest.raises(ValueError):
            AFABSchedule().stage_ops(4, 4, 8)

    def test_invalid_micro_rejected(self):
        with pytest.raises(ValueError):
            OneFOneBSchedule().stage_ops(0, 4, 0)

    def test_bad_op_kind_rejected(self):
        with pytest.raises(ValueError):
            StageOp("sideways", 0)


class TestStashBounds:
    def test_afab_stashes_whole_batch(self):
        sched = AFABSchedule()
        for stage in range(4):
            assert sched.stash_bound(stage, 4, 16) == 16

    def test_1f1b_stash_is_paper_bound(self):
        """Paper §4.1: the k-th GPU (1-indexed) stashes K-k+1 micro-batches."""
        sched = OneFOneBSchedule()
        K, M = 6, 32
        for stage in range(K):
            one_indexed = stage + 1
            assert sched.stash_bound(stage, K, M) == K - one_indexed + 1

    def test_1f1b_example_from_figure_7(self):
        # K=2: first GPU stashes 2 micro-batches.
        assert OneFOneBSchedule().stash_bound(0, 2, 4) == 2

    def test_advance_adds_exactly_advance_to_stash(self):
        base = OneFOneBSchedule()
        for adv in (1, 2, 3):
            sched = AdvanceFPSchedule(adv)
            for stage in range(4):
                expected = min(base.stash_bound(stage, 4, 16) + adv, 16)
                assert sched.stash_bound(stage, 4, 16) == expected


class TestDegeneracy:
    """§4.2: advance-FP degenerates into 1F1B at advance=0 and AFAB at
    advance >= M."""

    @settings(max_examples=40, deadline=None)
    @given(num_stages=st.integers(1, 6), stage=st.integers(0, 5), num_micro=st.integers(1, 24))
    def test_advance_zero_equals_1f1b(self, num_stages, stage, num_micro):
        if stage >= num_stages:
            return
        assert AdvanceFPSchedule(0).stage_ops(stage, num_stages, num_micro) == \
            OneFOneBSchedule().stage_ops(stage, num_stages, num_micro)

    @settings(max_examples=40, deadline=None)
    @given(num_stages=st.integers(1, 6), stage=st.integers(0, 5), num_micro=st.integers(1, 24))
    def test_advance_full_equals_afab(self, num_stages, stage, num_micro):
        if stage >= num_stages:
            return
        assert AdvanceFPSchedule(num_micro).stage_ops(stage, num_stages, num_micro) == \
            AFABSchedule().stage_ops(stage, num_stages, num_micro)


class TestVersionPolicies:
    def test_pipedream_versions_decrease_downstream(self):
        sched = PipeDreamSchedule()
        versions = [sched.weight_versions(k, 6) for k in range(6)]
        assert versions == [6, 5, 4, 3, 2, 1]

    def test_sync_schedules_have_one_or_two_versions(self):
        assert AFABSchedule().weight_versions(0, 6) == 1
        assert OneFOneBSchedule(versions=1).weight_versions(0, 6) == 1
        assert OneFOneBSchedule(versions=2).weight_versions(0, 6) == 2
        assert AdvanceFPSchedule(2).weight_versions(0, 6) == 1

    def test_pipedream_is_async(self):
        assert not PipeDreamSchedule().sync_at_batch_end
        assert AFABSchedule().sync_at_batch_end

    def test_invalid_1f1b_versions(self):
        with pytest.raises(ValueError):
            OneFOneBSchedule(versions=3)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            AdvanceFPSchedule(-1)


class TestScheduleByName:
    def test_aliases(self):
        assert isinstance(schedule_by_name("gpipe"), AFABSchedule)
        assert schedule_by_name("dapple").versions == 1
        assert schedule_by_name("2bw").versions == 2
        assert schedule_by_name("advance_fp", advance=3).advance == 3

    def test_unknown(self):
        with pytest.raises(KeyError):
            schedule_by_name("zigzag")
