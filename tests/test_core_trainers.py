"""Trainer update semantics: sync, delayed (PipeDream), 2BW lag, AvgPipe."""

import numpy as np
import pytest

from repro.core.trainer import (
    AvgPipeTrainer,
    PipeDream2BWTrainer,
    PipeDreamTrainer,
    SyncTrainer,
    _split_batch,
)
from repro.models.registry import WorkloadSpec
from repro.models import AWDConfig, build_awd_lstm
from repro.optim import SGD


def tiny_awd_spec(target=0.0, batch_size=8) -> WorkloadSpec:
    """A fast AWD-style workload for trainer mechanics tests.

    Uses a low-entropy Markov corpus so the loss has learnable headroom
    below its ~0.9-nat entropy floor (uniform noise would pin every
    trainer at ln(V) and make progress assertions meaningless).
    """
    cfg = AWDConfig(vocab_size=10, embed_dim=8, hidden_dim=10, num_layers=1, bptt=6,
                    dropout=0.0, weight_drop=0.0)
    from repro.data import LMConfig, make_lm_corpus

    tokens, _, _ = make_lm_corpus(LMConfig(corpus_len=700, vocab_size=10, branching=2, seed=2))

    from repro.data import batchify_lm

    def loader(bs, seed):
        return batchify_lm(tokens, batch_size=bs, bptt=cfg.bptt)

    def evaluate(model):
        batches = batchify_lm(tokens[:200], batch_size=4, bptt=cfg.bptt)
        from repro.tensor import no_grad
        model.eval()
        with no_grad():
            loss = float(np.mean([model.loss(b).item() for b in batches]))
        model.train()
        return loss

    return WorkloadSpec(
        name="tiny-awd",
        build_model=lambda: build_awd_lstm(cfg),
        make_train_loader=loader,
        evaluate=evaluate,
        make_optimizer=lambda m: SGD(m.parameters(), lr=0.5),
        target=target,
        metric_mode="min",
        metric_name="loss",
        batch_size=batch_size,
        paper_devices=4,
    )


class TestSplitBatch:
    def test_even(self):
        micros = _split_batch({"x": np.arange(8)}, 4)
        assert [len(m["x"]) for m in micros] == [2, 2, 2, 2]

    def test_uneven_keeps_all_samples(self):
        micros = _split_batch({"x": np.arange(10)}, 4)
        assert sum(len(m["x"]) for m in micros) == 10

    def test_more_micro_than_samples(self):
        micros = _split_batch({"x": np.arange(2)}, 8)
        assert len(micros) == 2


class TestSyncTrainer:
    def test_trains_and_records_history(self):
        result = SyncTrainer(tiny_awd_spec(), seed=0, max_epochs=2).train()
        assert result.epochs_run == 2
        assert len(result.metric_history) == 2
        assert result.metric_history[1] <= result.metric_history[0] + 0.1

    def test_stops_at_target(self):
        result = SyncTrainer(tiny_awd_spec(target=5.0), seed=0, max_epochs=5).train()
        # a lenient loss target of 5.0 nats should be hit immediately
        assert result.reached_target
        assert result.epochs_to_target <= 5


class TestPipeDreamTrainer:
    def test_delayed_updates_converge_but_run(self):
        result = PipeDreamTrainer(tiny_awd_spec(), seed=0, max_epochs=2, num_stages=4).train()
        assert result.epochs_run == 2
        assert np.isfinite(result.final_metric)

    def test_delay_zero_matches_sync_numerics(self):
        """With delay 0 and one micro-batch, PipeDream IS sync training."""
        spec = tiny_awd_spec()
        sync = SyncTrainer(spec, seed=0, max_epochs=1)
        pd = PipeDreamTrainer(spec, seed=0, max_epochs=1, num_stages=1, num_micro=1)
        rs = sync.train()
        rp = pd.train()
        assert rp.final_metric == pytest.approx(rs.final_metric, rel=1e-5)

    def test_larger_delay_hurts_or_matches_progress(self):
        spec = tiny_awd_spec()
        small = PipeDreamTrainer(spec, seed=0, max_epochs=2, num_stages=2).train()
        large = PipeDreamTrainer(spec, seed=0, max_epochs=2, num_stages=24).train()
        assert large.final_metric >= small.final_metric - 0.05


class TestPipeDream2BW:
    def test_one_batch_lag_first_batch_noop(self):
        """The very first batch's gradient is applied at batch 2; after one
        single batch the weights are unchanged."""
        spec = tiny_awd_spec(batch_size=96)  # single batch per epoch
        trainer = PipeDream2BWTrainer(spec, seed=0, max_epochs=1)
        before = trainer.model.state_dict()
        trainer.train()
        after = trainer.model.state_dict()
        changed = any(not np.array_equal(before[k], after[k]) for k in before)
        loader = spec.make_train_loader(96, 0)
        if len(loader) == 1:
            assert not changed
        else:
            assert changed

    def test_trains(self):
        result = PipeDream2BWTrainer(tiny_awd_spec(), seed=0, max_epochs=3).train()
        assert result.metric_history[-1] <= result.metric_history[0] + 0.1


class TestAvgPipeTrainer:
    def test_parallel_models_start_identical(self):
        trainer = AvgPipeTrainer(tiny_awd_spec(), seed=0, num_pipelines=3)
        s0 = trainer.models[0].state_dict()
        for m in trainer.models[1:]:
            s = m.state_dict()
            assert all(np.array_equal(s0[k], s[k]) for k in s0)

    def test_trains_and_evaluates_reference(self):
        result = AvgPipeTrainer(tiny_awd_spec(), seed=0, max_epochs=2, num_pipelines=2).train()
        assert result.epochs_run == 2
        assert np.isfinite(result.final_metric)
        assert result.metric_history[-1] <= result.metric_history[0] + 0.1

    def test_single_pipeline_close_to_sync(self):
        """N=1 AvgPipe is sync training plus a self-pull (alpha=1): with
        alpha=0 it must match sync exactly."""
        spec = tiny_awd_spec()
        sync = SyncTrainer(spec, seed=0, max_epochs=1).train()
        avg = AvgPipeTrainer(spec, seed=0, max_epochs=1, num_pipelines=1, alpha=0.0).train()
        assert avg.final_metric == pytest.approx(sync.final_metric, rel=1e-5)

    def test_statistical_efficiency_comparable_to_sync(self):
        """Figure 14's claim at miniature scale: AvgPipe's epochs-to-target
        within 2x of sync on the same task."""
        spec = tiny_awd_spec(target=1.45)
        sync = SyncTrainer(spec, seed=0, max_epochs=12).train()
        avg = AvgPipeTrainer(spec, seed=0, max_epochs=24, num_pipelines=2).train()
        assert sync.reached_target and avg.reached_target
        assert avg.epochs_to_target <= 2 * sync.epochs_to_target + 1

    def test_invalid_pipeline_count(self):
        with pytest.raises(ValueError):
            AvgPipeTrainer(tiny_awd_spec(), num_pipelines=0)
