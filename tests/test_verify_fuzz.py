"""Config fuzzer + trace causality checker: a seeded fuzz budget is
reproducible, every drawn config passes, the OOM prediction is an iff,
and an injected causality violation is detected."""

import pytest

from repro.verify.fuzz import (
    build_runner,
    check_trace_causality,
    fuzz_configs,
    inject_causality_violation,
    run_fuzz,
    run_fuzz_case,
)


def test_fuzz_configs_reproducible():
    a = fuzz_configs(10, seed=4)
    b = fuzz_configs(10, seed=4)
    assert a == b
    c = fuzz_configs(10, seed=5)
    assert a != c


def test_fuzz_budget_passes():
    results = run_fuzz(15, seed=0)
    assert len(results) == 15
    for r in results:
        assert r.ok, r.describe() + "\n" + "\n".join(r.problems)


def test_fuzz_covers_both_memory_regimes():
    configs = fuzz_configs(40, seed=1)
    regimes = {c.memory_regime for c in configs}
    assert regimes == {"fits", "oom"}
    placements = {c.placement for c in configs}
    assert "chimera" in placements or "interleaved" in placements


def test_oom_regime_actually_ooms():
    cfg = next(c for c in fuzz_configs(60, seed=2) if c.memory_regime == "oom")
    result = run_fuzz_case(cfg)
    assert result.oomed
    assert result.ok, "\n".join(result.problems)


def test_fits_regime_checks_spans():
    cfg = next(c for c in fuzz_configs(60, seed=2) if c.memory_regime == "fits")
    result = run_fuzz_case(cfg)
    assert not result.oomed
    assert result.spans_checked > 0
    assert result.ok, "\n".join(result.problems)


def _run_clean_case(seed=3):
    cfg = next(
        c for c in fuzz_configs(60, seed=seed)
        if c.memory_regime == "fits" and c.num_stages >= 2 and c.placement == "straight"
    )
    runner, bundle = build_runner(cfg)
    runner.run(iterations=cfg.iterations)
    streams = [
        bundle.schedule.stage_ops(k, bundle.num_stages, cfg.num_micro)
        for k in range(bundle.num_stages)
    ]
    return cfg, runner, streams


def test_clean_trace_is_causally_sound():
    cfg, runner, streams = _run_clean_case()
    problems = check_trace_causality(
        runner.trace, streams, cfg.num_micro, cfg.iterations, cfg.num_pipelines
    )
    assert problems == []


def test_injected_violation_is_detected():
    cfg, runner, streams = _run_clean_case()
    msg = inject_causality_violation(runner.trace)
    assert "rewound" in msg
    problems = check_trace_causality(
        runner.trace, streams, cfg.num_micro, cfg.iterations, cfg.num_pipelines
    )
    assert problems, "tampered trace passed the causality check"
    assert any("before" in p for p in problems)


def test_missing_span_is_detected():
    cfg, runner, streams = _run_clean_case(seed=6)
    spans = runner.trace.compute_spans()
    runner.trace.spans.remove(spans[len(spans) // 2])
    problems = check_trace_causality(
        runner.trace, streams, cfg.num_micro, cfg.iterations, cfg.num_pipelines
    )
    assert any("expected" in p or "no recorded dependency" in p for p in problems)
