"""Heterogeneous cluster specs: validation, uniform bit-identity, wins.

Four layers of coverage:

* :class:`ClusterSpec` heterogeneity fields validate and read back
  correctly (per-device speed/memory, directed link overrides);
* explicit "trivially heterogeneous" specs (unit speeds, identity
  placement, capacities equal to the shared budget) simulate *bitwise
  identically* to the uniform defaults — the guarantee that lets every
  uniform golden stay pinned while the hetero paths exist;
* the canned variants (:mod:`repro.sim.hetero`) are shaped as documented
  and the planning stack beats uniform partitioning on each of them in
  actual simulation (the acceptance criterion, at smoke scale — the
  benchmark asserts it again at full scale);
* the verify fuzzer draws heterogeneous configurations reproducibly and
  its per-device OOM predictions stay honest.
"""

import dataclasses

import pytest

from repro.core.profiler import Profiler
from repro.core.simcfg import calibration_for
from repro.experiments.hetero_clusters import STRATEGY_ORDER, run_hetero
from repro.schedules import AdvanceFPSchedule
from repro.sim import ClusterSpec, hetero_variant, hetero_variant_names
from repro.verify.fuzz import fuzz_configs, run_fuzz_case


class TestClusterSpecValidation:
    def test_speed_length_mismatch(self):
        with pytest.raises(ValueError, match="device_speed"):
            ClusterSpec(nodes=2, gpus_per_node=2, device_speed=(1.0, 0.5))

    def test_non_positive_speed(self):
        with pytest.raises(ValueError, match="positive"):
            ClusterSpec(nodes=2, gpus_per_node=2, device_speed=(1.0, 0.5, 0.0, 1.0))

    def test_memory_length_mismatch(self):
        with pytest.raises(ValueError, match="device_memory_bytes"):
            ClusterSpec(nodes=2, gpus_per_node=2, device_memory_bytes=(1, 2, 3))

    def test_non_positive_memory(self):
        with pytest.raises(ValueError, match="positive"):
            ClusterSpec(nodes=2, gpus_per_node=2, device_memory_bytes=(1, 1, 0, 1))

    def test_self_link_override(self):
        with pytest.raises(ValueError, match="self-link"):
            ClusterSpec(nodes=2, gpus_per_node=2, link_overrides=((1, 1, 1e9, 0.0),))

    def test_out_of_range_override(self):
        with pytest.raises(ValueError, match="outside"):
            ClusterSpec(nodes=2, gpus_per_node=2, link_overrides=((0, 4, 1e9, 0.0),))

    def test_non_positive_bandwidth_override(self):
        with pytest.raises(ValueError, match="bandwidth"):
            ClusterSpec(nodes=2, gpus_per_node=2, link_overrides=((0, 1, 0.0, 0.0),))

    def test_negative_latency_override(self):
        with pytest.raises(ValueError, match="latency"):
            ClusterSpec(nodes=2, gpus_per_node=2, link_overrides=((0, 1, 1e9, -1.0),))


class TestClusterSpecAccessors:
    def test_uniform_defaults(self):
        spec = ClusterSpec(nodes=2, gpus_per_node=2)
        assert spec.is_uniform
        assert spec.speed_vector() == (1.0,) * 4
        assert spec.memory_vector() == (spec.memory_bytes,) * 4
        # uniform peak_flops_of is a passthrough, not a multiply-by-one
        assert spec.peak_flops_of(3) == spec.peak_flops
        assert spec.link_params(0, 1) == (
            spec.intra_node_bandwidth,
            spec.intra_node_latency,
        )
        assert spec.link_params(1, 2) == (
            spec.inter_node_bandwidth,
            spec.inter_node_latency,
        )

    def test_bandwidth_matrix_shape(self):
        spec = ClusterSpec(nodes=2, gpus_per_node=2)
        matrix = spec.bandwidth_matrix()
        assert len(matrix) == 4 and all(len(row) == 4 for row in matrix)
        for i in range(4):
            assert matrix[i][i] == float("inf")
        assert matrix[0][1] == spec.intra_node_bandwidth
        assert matrix[1][2] == spec.inter_node_bandwidth

    def test_link_override_is_directional(self):
        spec = ClusterSpec(
            nodes=2, gpus_per_node=2, link_overrides=((1, 2, 7.0, 0.5),)
        )
        assert not spec.is_uniform
        assert spec.link_params(1, 2) == (7.0, 0.5)
        # the reverse direction keeps its class-derived parameters
        assert spec.link_params(2, 1) == (
            spec.inter_node_bandwidth,
            spec.inter_node_latency,
        )

    def test_hetero_accessors(self):
        spec = ClusterSpec(
            nodes=2,
            gpus_per_node=2,
            device_speed=(1.0, 0.5, 0.25, 1.0),
            device_memory_bytes=(10, 20, 30, 40),
        )
        assert spec.speed_of(1) == 0.5
        assert spec.peak_flops_of(2) == spec.peak_flops * 0.25
        assert spec.memory_bytes_of(3) == 40
        assert spec.node_of(1) == 0 and spec.node_of(2) == 1

    def test_no_self_links(self):
        spec = ClusterSpec(nodes=2, gpus_per_node=2)
        with pytest.raises(ValueError, match="self-link"):
            spec.link_params(2, 2)


class TestHeteroVariants:
    def test_variant_names(self):
        assert hetero_variant_names() == ("mixed-gen", "straggler-node", "asym-links")

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown hetero variant"):
            hetero_variant("quantum-annealer")

    def test_mixed_gen_shape(self):
        spec = hetero_variant("mixed-gen")
        assert spec.num_devices == 4
        assert spec.speed_vector() == (1.0, 1.0, 0.5, 0.5)
        mem = spec.memory_vector()
        assert mem[0] == mem[1] == spec.memory_bytes
        assert mem[2] == mem[3] == int(spec.memory_bytes * 0.75)

    def test_straggler_node_shape(self):
        spec = hetero_variant("straggler-node")
        assert spec.speed_vector() == (1.0, 0.4, 1.0, 1.0)
        assert spec.memory_vector() == (spec.memory_bytes,) * 4

    def test_asym_links_shape(self):
        spec = hetero_variant("asym-links")
        base = ClusterSpec(nodes=2, gpus_per_node=2)
        slow_bw, slow_lat = spec.link_params(1, 2)
        assert slow_bw == base.inter_node_bandwidth / 5.0
        assert slow_lat == base.inter_node_latency * 4.0
        assert spec.link_params(2, 1) == (slow_bw, slow_lat)
        # the healthy cross-node links are untouched
        assert spec.link_params(0, 3) == (
            base.inter_node_bandwidth,
            base.inter_node_latency,
        )

    def test_asym_links_needs_four_devices(self):
        with pytest.raises(ValueError, match=">= 4 devices"):
            hetero_variant("asym-links", base=ClusterSpec(nodes=1, gpus_per_node=2))


class TestUniformBitIdentity:
    """Explicit trivial heterogeneity == the uniform defaults, bitwise."""

    @staticmethod
    def _run(spec, placement):
        cal = calibration_for("awd")
        costs = cal.layer_costs()
        profiler = Profiler(
            layer_costs=costs,
            partition=cal.partition(costs),
            schedule=AdvanceFPSchedule(2),
            cluster_spec=spec,
            batch_size=cal.batch_size,
            activation_byte_scale=cal.activation_byte_scale,
            param_byte_scale=cal.param_byte_scale,
            stash_multiplier=cal.stash_multiplier,
            optimizer_state_factor=cal.optimizer_state_factor,
            with_reference_model=True,
            placement=placement,
        )
        result = profiler.run_setting(4, 1, iterations=1)
        return result.batch_time, tuple(result.peak_memory)

    def test_explicit_unit_spec_is_bitwise_identical(self):
        cal = calibration_for("awd")
        base = cal.cluster_spec()
        explicit = dataclasses.replace(
            base,
            device_speed=(1.0,) * base.num_devices,
            device_memory_bytes=(base.memory_bytes,) * base.num_devices,
        )
        assert not explicit.is_uniform  # takes the heterogeneous code path
        t_base, mem_base = self._run(base, None)
        t_explicit, mem_explicit = self._run(explicit, tuple(range(base.num_devices)))
        assert t_base == t_explicit  # bitwise, not approx
        assert mem_base == mem_explicit

    def test_identity_placement_is_bitwise_identical(self):
        cal = calibration_for("awd")
        base = cal.cluster_spec()
        t_none, mem_none = self._run(base, None)
        t_id, mem_id = self._run(base, tuple(range(base.num_devices)))
        assert t_none == t_id
        assert mem_none == mem_id


class TestPlacementValidation:
    def test_placement_must_be_a_permutation(self):
        cal = calibration_for("awd")
        costs = cal.layer_costs()
        with pytest.raises(ValueError, match="permutation"):
            Profiler(
                layer_costs=costs,
                partition=cal.partition(costs),
                schedule=AdvanceFPSchedule(2),
                cluster_spec=cal.cluster_spec(),
                batch_size=cal.batch_size,
                placement=(0, 0, 1, 2),
            )

    def test_placement_length_must_match_stages(self):
        cal = calibration_for("awd")
        costs = cal.layer_costs()
        with pytest.raises(ValueError, match="placement"):
            Profiler(
                layer_costs=costs,
                partition=cal.partition(costs),
                schedule=AdvanceFPSchedule(2),
                cluster_spec=cal.cluster_spec(),
                batch_size=cal.batch_size,
                placement=(0, 1, 2),
            )


class TestHeteroExperimentSmoke:
    """Acceptance criterion: both strategies beat uniform on every variant."""

    @pytest.fixture(scope="class")
    def data(self):
        return run_hetero(("gnmt",), num_micro=4, iterations=1)

    def test_row_grid_is_complete(self, data):
        rows = data["rows"]
        assert len(rows) == len(hetero_variant_names()) * len(STRATEGY_ORDER)
        assert not any(r.oom for r in rows)

    def test_uniform_speedup_is_one(self, data):
        for variant in hetero_variant_names():
            assert data["speedup"][("gnmt", variant, "uniform-partition")] == 1.0

    def test_balanced_beats_uniform_on_every_variant(self, data):
        for variant in hetero_variant_names():
            assert data["speedup"][("gnmt", variant, "balanced")] > 1.0, variant

    def test_joint_search_beats_uniform_on_every_variant(self, data):
        for variant in hetero_variant_names():
            assert data["speedup"][("gnmt", variant, "balanced+placement")] > 1.0, variant

    def test_placement_is_the_lever_on_asym_links(self, data):
        # partitioning alone cannot fix a congested wire; the placement
        # pass must route around it and win by a clear margin
        balanced = data["speedup"][("gnmt", "asym-links", "balanced")]
        joint = data["speedup"][("gnmt", "asym-links", "balanced+placement")]
        assert joint > balanced


class TestFuzzerHetero:
    def test_draws_are_reproducible(self):
        assert fuzz_configs(30, seed=7) == fuzz_configs(30, seed=7)

    def test_hetero_axis_is_exercised(self):
        configs = fuzz_configs(60, seed=7)
        kinds = {cfg.hetero for cfg in configs}
        assert kinds == {"none", "speeds", "memory", "both"}
        for cfg in configs:
            if cfg.hetero in ("speeds", "both"):
                assert len(cfg.device_speed) == cfg.num_stages
                assert all(0.4 <= s <= 1.0 for s in cfg.device_speed)
            else:
                assert cfg.device_speed == ()

    @staticmethod
    def _first(configs, predicate):
        for cfg in configs:
            if predicate(cfg):
                return cfg
        raise AssertionError("no matching fuzz config in the sample")

    def test_hetero_memory_oom_case_ooms(self):
        configs = fuzz_configs(60, seed=7)
        cfg = self._first(
            configs,
            lambda c: c.hetero in ("memory", "both") and c.memory_regime == "oom",
        )
        result = run_fuzz_case(cfg)
        assert result.ok, result.problems
        assert result.oomed

    def test_hetero_speeds_fit_case_completes(self):
        configs = fuzz_configs(60, seed=7)
        cfg = self._first(
            configs,
            lambda c: c.hetero == "speeds" and c.memory_regime == "fits",
        )
        result = run_fuzz_case(cfg)
        assert result.ok, result.problems
        assert not result.oomed
