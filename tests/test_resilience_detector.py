"""Detection fires iff a fault was injected — the negative-path contract."""

import pytest

from repro.resilience import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    HeartbeatDetector,
    IterationHeartbeat,
)
from tests.test_resilience_faults import fault_free_time, make_setup

ITERS = 6


def calibrated_interval():
    """One batch time from a fault-free run, as the chaos harness does."""
    return fault_free_time(iterations=ITERS) / ITERS


class TestHeartbeatDetector:
    def test_no_false_positives_on_a_fault_free_run(self):
        interval = calibrated_interval()
        sim, cluster, runner = make_setup()
        detector = HeartbeatDetector(sim, runner, cluster=cluster,
                                     interval=interval, miss_threshold=2.0)
        detector.start()
        runner.run(iterations=ITERS)
        assert detector.reports == []

    def test_injected_crash_detected_within_heartbeat_multiple(self):
        interval = calibrated_interval()
        miss = 2.0
        fault_at = 0.25 * interval * ITERS
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[FaultEvent("pipeline_crash", fault_at, 1)]))
        detector = HeartbeatDetector(sim, runner, cluster=cluster,
                                     interval=interval, miss_threshold=miss)
        detector.start()
        runner.run(iterations=ITERS)
        assert [r.kind for r in detector.reports] == ["pipeline_crash"]
        report = detector.reports[0]
        assert report.target == 1
        assert report.detected_at > fault_at
        # Silence threshold + at most one full polling period of slack.
        assert report.detected_at - fault_at <= interval * (miss + 2)
        assert list(detector.crashed_pipelines) == [1]

    def test_frozen_device_reported_as_device_crash_not_silence(self):
        interval = calibrated_interval()
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[
            FaultEvent("device_crash", 0.37 * interval * ITERS, 1,
                       duration=4 * interval),
        ]))
        detector = HeartbeatDetector(sim, runner, cluster=cluster,
                                     interval=interval, miss_threshold=2.0)
        detector.start()
        runner.run(iterations=ITERS)
        kinds = {r.kind for r in detector.reports}
        assert "device_crash" in kinds
        # Straight-chain placement: the dead device explains every
        # pipeline's silence, so no pipeline is (wrongly) declared dead.
        assert "pipeline_crash" not in kinds

    def test_straggler_reported_with_observed_severity(self):
        interval = calibrated_interval()
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[
            FaultEvent("device_slowdown", 0.37 * interval * ITERS, 2,
                       duration=4 * interval, factor=4.0),
        ]))
        detector = HeartbeatDetector(sim, runner, cluster=cluster,
                                     interval=interval, miss_threshold=2.0,
                                     straggler_factor=2.0)
        detector.start()
        runner.run(iterations=ITERS)
        stragglers = [r for r in detector.reports if r.kind == "straggler"]
        assert [r.target for r in stragglers] == [2]
        assert stragglers[0].severity == pytest.approx(4.0)
        assert {r.kind for r in detector.reports} == {"straggler"}

    def test_straggler_ignored_without_straggler_factor(self):
        interval = calibrated_interval()
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[
            FaultEvent("device_slowdown", 0.37 * interval * ITERS, 2,
                       duration=4 * interval, factor=4.0),
        ]))
        detector = HeartbeatDetector(sim, runner, cluster=cluster,
                                     interval=interval, miss_threshold=2.0)
        detector.start()
        runner.run(iterations=ITERS)
        assert detector.reports == []

    def test_severed_link_reported_via_telemetry(self):
        interval = calibrated_interval()
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[
            FaultEvent("link_partition", 0.37 * interval * ITERS, (0, 1),
                       duration=4 * interval),
        ]))
        detector = HeartbeatDetector(sim, runner, cluster=cluster,
                                     interval=interval, miss_threshold=2.0)
        detector.start()
        runner.run(iterations=ITERS)
        kinds = {r.kind for r in detector.reports}
        assert "link_partition" in kinds
        assert "pipeline_crash" not in kinds

    def test_each_failure_reported_once(self):
        interval = calibrated_interval()
        sim, cluster, runner = make_setup()
        injector = FaultInjector(sim, cluster, runner=runner)
        injector.install(FaultPlan(events=[
            FaultEvent("pipeline_crash", 0.25 * interval * ITERS, 1),
        ]))
        detector = HeartbeatDetector(sim, runner, cluster=cluster,
                                     interval=interval, miss_threshold=2.0)
        detector.start()
        runner.run(iterations=ITERS)
        # Many polling periods pass after detection; still one report.
        assert len(detector.reports) == 1


class TestIterationHeartbeat:
    def test_silent_while_everyone_beats(self):
        hb = IterationHeartbeat(miss_threshold=2)
        for rnd in range(5):
            for p in range(3):
                hb.beat(p, rnd)
            assert hb.check() == []

    def test_lagging_pipeline_reported_after_threshold(self):
        hb = IterationHeartbeat(miss_threshold=2)
        for rnd in range(4):
            hb.beat(0, rnd)
            hb.beat(1, rnd)
            if rnd < 1:
                hb.beat(2, rnd)
            reports = hb.check()
            if rnd < 3:  # lag of 0..2 rounds: within threshold
                assert reports == []
            else:
                assert [r.target for r in reports] == [2]
                assert reports[0].kind == "pipeline_crash"

    def test_reported_once_then_silent(self):
        hb = IterationHeartbeat(miss_threshold=1)
        hb.beat(0, 0)
        hb.beat(1, 0)
        hb.beat(0, 1)
        hb.beat(0, 2)
        assert len(hb.check()) == 1
        assert hb.check() == []

    def test_retired_pipeline_not_reported(self):
        hb = IterationHeartbeat(miss_threshold=1)
        hb.beat(0, 0)
        hb.beat(1, 0)
        hb.retire(1)
        hb.beat(0, 1)
        hb.beat(0, 2)
        assert hb.check() == []
