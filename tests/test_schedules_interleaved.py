"""Interleaved virtual stages (Megatron-style) on the generic executor."""

import numpy as np
import pytest

from repro.graph import LayerCost
from repro.schedules import OneFOneBSchedule, PipelineSimRunner, StageCosts
from repro.schedules.interleaved import interleaved_device_map, simulate_interleaved
from repro.sim import ClusterSpec, Simulator, make_cluster

GIB = 2**30


def uniform_layers(n=12, flops=2.0e6, act=1.0e6):
    return [
        LayerCost(f"l{i}", flops_per_sample=flops, activation_bytes_per_sample=act, param_bytes=500_000)
        for i in range(n)
    ]


def fresh_cluster(k=6):
    sim = Simulator()
    return make_cluster(sim, k, spec=ClusterSpec(nodes=k // 2, gpus_per_node=2, memory_bytes=8 * GIB))


class TestDeviceMapHelper:
    def test_round_robin(self):
        assert interleaved_device_map(3, 2) == [0, 1, 2, 0, 1, 2]

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            interleaved_device_map(3, 0)


class TestInterleavedExecution:
    def test_runs_and_balances_devices(self):
        res = simulate_interleaved(fresh_cluster(), uniform_layers(), num_micro=8, mb_size=4.0,
                                   virtual_factor=2, iterations=2)
        assert res.oom is None
        gpu_times = [d["gpu"] for d in res.decomposition]
        assert len(gpu_times) == 6
        assert max(gpu_times) < 1.5 * min(gpu_times)  # round-robin balance

    def test_weight_memory_counts_all_chunks(self):
        res = simulate_interleaved(fresh_cluster(), uniform_layers(), num_micro=8, mb_size=4.0,
                                   virtual_factor=2, iterations=1)
        # 12 chunks over 6 devices: each device holds ~2 chunks of weights.
        single = simulate_interleaved(fresh_cluster(), uniform_layers(), num_micro=8,
                                      mb_size=4.0, virtual_factor=1, iterations=1)
        assert sum(res.weight_memory) == pytest.approx(sum(single.weight_memory), rel=0.05)

    def test_too_few_layers_rejected(self):
        with pytest.raises(ValueError):
            simulate_interleaved(fresh_cluster(), uniform_layers(n=4), num_micro=4, mb_size=4.0,
                                 virtual_factor=2)

    def test_reduces_fill_bubble_vs_plain_1f1b(self):
        """The Megatron claim: with cheap communication, interleaving
        shrinks warmup bubbles (fill advances chunk-by-chunk)."""
        layers = uniform_layers(act=2.0e4)  # comm negligible
        inter = simulate_interleaved(fresh_cluster(), layers, num_micro=12, mb_size=4.0,
                                     virtual_factor=2, iterations=2)
        plain = simulate_interleaved(fresh_cluster(), layers, num_micro=12, mb_size=4.0,
                                     virtual_factor=1, iterations=2)
        assert inter.batch_time < plain.batch_time

    def test_costs_more_communication(self):
        layers = uniform_layers(act=2.0e6)
        inter = simulate_interleaved(fresh_cluster(), layers, num_micro=8, mb_size=4.0,
                                     virtual_factor=2, iterations=1)
        plain = simulate_interleaved(fresh_cluster(), layers, num_micro=8, mb_size=4.0,
                                     virtual_factor=1, iterations=1)
        assert sum(inter.comm_sent_time) > sum(plain.comm_sent_time)
