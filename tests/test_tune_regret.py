"""Tuner regret: the learned predictor beats analytic on held-out specs.

The ISSUE's acceptance criterion, pinned as a regression test over the
three canned hetero variants: the learned strategy — seeded with the
*other* variants' recorded sweeps, never its own — must reach within
:data:`LEARNED_EPSILON` of the oracle-best (M, N) in at most
:data:`LEARNED_K_THRESHOLD` profile runs, strictly fewer than the
analytic strategy needs, with top-1 regret no worse than analytic.  On
*seen* configs (the variant's own records in the store) the learned
ranking is a measured ranking and can never be worse than analytic.
"""

import math

import pytest

from repro.core.predictor import Predictor
from repro.experiments.fig18_19_tuning import (
    LEARNED_EPSILON,
    LEARNED_K_THRESHOLD,
    LEARNED_M_CANDIDATES,
    LEARNED_N_CANDIDATES,
    oracle_sweep,
    run_tune_learned,
    runs_to_epsilon,
    variant_profiler,
)
from repro.sim.hetero import hetero_variant_names
from repro.tune.residual import LearnedPredictor
from repro.tune.store import RunStore, tuner_context

WORKLOAD = "awd"


@pytest.fixture(scope="module")
def learned_data():
    return run_tune_learned(WORKLOAD)


class TestHeldOutRegret:
    def test_covers_all_three_canned_variants(self, learned_data):
        assert [r.variant for r in learned_data["rows"]] == list(
            hetero_variant_names()
        )

    def test_learned_within_epsilon_in_k_runs(self, learned_data):
        for row in learned_data["rows"]:
            assert row.learned_runs <= LEARNED_K_THRESHOLD, (
                f"{row.variant}: learned needed {row.learned_runs} runs, "
                f"threshold is {LEARNED_K_THRESHOLD}"
            )

    def test_learned_strictly_fewer_runs_than_analytic(self, learned_data):
        for row in learned_data["rows"]:
            assert row.learned_runs < row.analytic_runs, (
                f"{row.variant}: learned={row.learned_runs} "
                f"analytic={row.analytic_runs}"
            )

    def test_learned_top1_regret_no_worse_than_analytic(self, learned_data):
        for row in learned_data["rows"]:
            assert row.learned_top1_regret <= row.analytic_top1_regret

    def test_analytic_misses_epsilon_on_first_pick(self, learned_data):
        """The comparison is non-vacuous: analytic's first pick is NOT
        within epsilon (else this suite proves nothing)."""
        for row in learned_data["rows"]:
            assert row.analytic_top1_regret > LEARNED_EPSILON

    def test_pinned_constants(self):
        """The regression constants the ISSUE requires pinning."""
        assert LEARNED_EPSILON == 0.01
        assert LEARNED_K_THRESHOLD == 2


class TestSeenConfigs:
    """With the variant's OWN sweep records in the store, every learned
    correction is exact (measured/predicted at that very setting), so
    the learned winner's measured time is the grid's true optimum —
    never worse than the analytic winner's."""

    @pytest.mark.parametrize("variant", hetero_variant_names())
    def test_learned_ranking_never_worse_on_seen(self, variant):
        profiler = variant_profiler(WORKLOAD, variant)
        oracle, records = oracle_sweep(profiler, workload=WORKLOAD)
        context = tuner_context(profiler, workload=WORKLOAD)
        predictor = Predictor(profiler.profile(iterations=4))
        limit = list(
            profiler.cluster_spec.memory_vector()[d]
            for d in (profiler.placement or range(profiler.partition.num_stages))
        )
        analytic_winner, _ = predictor.best_setting(
            list(LEARNED_M_CANDIDATES), list(LEARNED_N_CANDIDATES), limit
        )
        decision = LearnedPredictor(
            predictor,
            store=RunStore.from_records(list(records.values())),
            context=context,
            workload=WORKLOAD,
        ).best_setting(
            list(LEARNED_M_CANDIDATES), list(LEARNED_N_CANDIDATES), limit
        )
        assert decision.residual_applied
        learned_time = oracle[(decision.winner.m, decision.winner.n)]
        analytic_time = oracle[(analytic_winner.m, analytic_winner.n)]
        assert learned_time <= analytic_time
        finite = [v for v in oracle.values() if math.isfinite(v)]
        assert learned_time == min(finite)  # exact corrections => oracle-best

    def test_online_loop_with_own_records_needs_one_run(self):
        """Seeding with the variant's own sweep: the first proposal is
        already the oracle best."""
        variant = hetero_variant_names()[0]
        profiler = variant_profiler(WORKLOAD, variant)
        oracle, records = oracle_sweep(profiler, workload=WORKLOAD)
        limit = list(profiler.cluster_spec.memory_vector())
        store = RunStore.from_records(list(records.values()))
        runs, proposals = runs_to_epsilon(
            profiler, oracle, records, limit, store=store, workload=WORKLOAD
        )
        assert runs == 1
        finite = [v for v in oracle.values() if math.isfinite(v)]
        assert oracle[proposals[0]] == min(finite)
