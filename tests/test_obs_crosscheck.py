"""Cross-checks: registry telemetry vs the quantities it mirrors.

The registry is a *second* accounting of numbers the repo already
computes — Equation 1's per-device decomposition from the trace
recorder, the averaging divergence from the elastic framework.  These
tests run the Figure-2 configuration and a short numerics run and assert
the two accountings agree exactly (bitwise for Eq. 1, which accumulates
the identical float additions in the identical order).
"""

import numpy as np
import pytest

from repro.baselines import BASELINE_SYSTEMS, choose_baseline_micro, simulate_baseline
from repro.core.simcfg import calibration_for
from repro.obs import MetricRegistry, TrainingTelemetry
from repro.obs.report import EQ1_COMPONENTS, registry_decomposition
from repro.sim.trace import EQ1_COMPONENT, SpanKind


@pytest.fixture(scope="module")
def fig02_run():
    """The fig02 configuration (bert / GPipe), instrumented."""
    registry = MetricRegistry()
    cal = calibration_for("bert")
    system = BASELINE_SYSTEMS["gpipe"]
    m = choose_baseline_micro(system, cal)
    result = simulate_baseline(
        system, cal, num_micro=m, iterations=2,
        record_utilization=True, registry=registry,
    )
    assert result.oom is None
    return registry, result


def test_eq1_component_map_covers_device_work_kinds():
    assert set(EQ1_COMPONENT.values()) == set(EQ1_COMPONENTS)
    # fault/recovery are annotation windows, not device work.
    assert SpanKind.FAULT not in EQ1_COMPONENT
    assert SpanKind.RECOVERY not in EQ1_COMPONENT
    assert set(EQ1_COMPONENT) == set(SpanKind) - {SpanKind.FAULT, SpanKind.RECOVERY}


def test_registry_eq1_matches_trace_decomposition_bitwise(fig02_run):
    registry, result = fig02_run
    for dev in range(result.num_stages):
        from_trace = result.trace.time_decomposition(dev)
        from_registry = registry_decomposition(registry, dev)
        for component in EQ1_COMPONENTS:
            # Same float additions in span-record order: ==, not approx.
            assert from_registry[component] == from_trace[component], (
                f"device {dev} T_{component}"
            )


def test_registry_span_counts_match_trace(fig02_run):
    registry, result = fig02_run
    for dev in range(result.num_stages):
        for kind in SpanKind:
            recorded = sum(
                1 for s in result.trace.spans
                if s.device == dev and s.kind is kind and s.end > s.start
            )
            counted = registry.value("trace.spans", device=dev, kind=kind.value)
            assert counted == recorded, f"device {dev} {kind.value}"


def test_run_metrics_match_result(fig02_run):
    registry, result = fig02_run
    assert registry.value("sim.run.total_seconds") == result.total_time
    assert registry.value("sim.run.num_micro") == result.num_micro
    samples = registry.value("sim.run.samples")
    assert registry.value("sim.run.samples_per_second") == samples / result.total_time
    for dev in range(result.num_stages):
        assert registry.value("sim.mem.peak_bytes", device=dev) == result.peak_memory[dev]


def test_divergence_gauge_matches_direct_computation():
    from repro.core.trainer import AvgPipeTrainer
    from repro.resilience.chaos import tiny_chaos_spec

    registry = MetricRegistry()
    trainer = AvgPipeTrainer(
        tiny_chaos_spec(), seed=1, num_pipelines=2, max_epochs=1,
        telemetry=TrainingTelemetry(registry),
    )
    trainer.train()
    framework = trainer.framework

    # Independent ‖x_i − x̃‖ RMS over every model and parameter.
    total, count = 0.0, 0
    for model in framework.models:
        for name, param in model.named_parameters():
            diff = param.data.astype(np.float64) - framework.reference[name]
            total += float((diff**2).sum())
            count += diff.size
    direct = float(np.sqrt(total / count))

    gauge = registry.value("train.divergence")
    assert gauge == framework.divergence()
    assert gauge == direct  # same formula, same op order: bitwise equal
    assert registry.value("train.alpha") == framework.alpha
    assert registry.value("train.num_pipelines") == framework.num_parallel
