"""CLI: parser wiring and the fast commands end to end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan", "awd"])
        assert args.workload == "awd"
        assert args.max_pipelines == 4

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "resnet"])

    def test_timeline_defaults(self):
        args = build_parser().parse_args(["timeline"])
        assert args.schedule == "advance_fp"
        assert args.micro == 8

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_timeline_renders(self, capsys):
        code = main(["timeline", "--workload", "awd", "--schedule", "1f1b", "--micro", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "GPU 1" in out
        assert "iteration time" in out

    def test_plan_awd(self, capsys):
        code = main(["plan", "awd", "--iterations", "1", "--max-pipelines", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "parallel pipelines" in out
        assert "time per batch" in out

    def test_figure_unknown(self, capsys):
        code = main(["figure", "fig99"])
        assert code == 2
        assert "unknown figure" in capsys.readouterr().out

    def test_figure_fig07(self, capsys):
        code = main(["figure", "fig07"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig07" in out


class TestVerify:
    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.fuzz == 25
        assert args.tol == 1e-9
        assert args.inject == "none"

    def test_verify_quick_passes(self, capsys):
        code = main(["verify", "--quick", "--fuzz", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all checks passed" in out
        assert "worst |delta| = 0" in out

    def test_verify_fails_on_corrupted_schedule(self, capsys):
        code = main(["verify", "--quick", "--fuzz", "0", "--inject", "swapped-bwd"])
        out = capsys.readouterr().out
        assert code == 1
        assert "SANITIZER" in out
        assert "FAILED" in out

    def test_verify_fails_on_injected_causality_violation(self, capsys):
        code = main(["verify", "--quick", "--fuzz", "0", "--inject", "causality"])
        out = capsys.readouterr().out
        assert code == 1
        assert "CAUSALITY" in out
