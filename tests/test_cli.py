"""CLI: parser wiring and the fast commands end to end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan", "awd"])
        assert args.workload == "awd"
        assert args.max_pipelines == 4

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "resnet"])

    def test_timeline_defaults(self):
        args = build_parser().parse_args(["timeline"])
        assert args.schedule == "advance_fp"
        assert args.micro == 8

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_timeline_renders(self, capsys):
        code = main(["timeline", "--workload", "awd", "--schedule", "1f1b", "--micro", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "GPU 1" in out
        assert "iteration time" in out

    def test_plan_awd(self, capsys):
        code = main(["plan", "awd", "--iterations", "1", "--max-pipelines", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "parallel pipelines" in out
        assert "time per batch" in out

    def test_figure_unknown(self, capsys):
        code = main(["figure", "fig99"])
        assert code == 2
        assert "unknown figure" in capsys.readouterr().out

    def test_figure_fig07(self, capsys):
        code = main(["figure", "fig07"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig07" in out


class TestVerify:
    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.fuzz == 25
        assert args.tol == 1e-9
        assert args.inject == "none"

    def test_verify_quick_passes(self, capsys):
        code = main(["verify", "--quick", "--fuzz", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all checks passed" in out
        assert "worst |delta| = 0" in out

    def test_verify_fails_on_corrupted_schedule(self, capsys):
        code = main(["verify", "--quick", "--fuzz", "0", "--inject", "swapped-bwd"])
        out = capsys.readouterr().out
        assert code == 1
        assert "SANITIZER" in out
        assert "FAILED" in out

    def test_verify_fails_on_injected_causality_violation(self, capsys):
        code = main(["verify", "--quick", "--fuzz", "0", "--inject", "causality"])
        out = capsys.readouterr().out
        assert code == 1
        assert "CAUSALITY" in out


class TestTune:
    def test_tune_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune"])

    def test_record_requires_micro(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "record", "awd"])

    def test_predict_defaults(self):
        args = build_parser().parse_args(["tune", "predict", "awd"])
        assert args.action == "predict"
        assert args.max_pipelines == 4
        assert args.store is None
        assert not args.expect_identical

    def test_sweep_then_predict_consults_records(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        code = main(["tune", "sweep", "awd", "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "appended 8 records" in out
        assert store.exists()

        code = main(["tune", "predict", "awd", "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "records consulted     | 8" in out.replace("  ", " ") or "8" in out
        assert "residual applied" in out
        assert "yes" in out

    def test_record_appends_one_record(self, tmp_path, capsys):
        from repro.tune import RunStore

        store = tmp_path / "runs.jsonl"
        code = main(["tune", "record", "awd", "--micro", "2", "--pipelines", "2",
                     "--iterations", "1", "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fingerprint" in out and "measured ms/batch" in out
        assert len(RunStore.load(store)) == 1

    def test_predict_empty_store_expect_identical_passes(self, tmp_path, capsys):
        code = main(["tune", "predict", "awd",
                     "--store", str(tmp_path / "empty.jsonl"),
                     "--expect-identical"])
        out = capsys.readouterr().out
        assert code == 0
        assert "identical to the analytic tuner" in out
        assert "residual applied" in out and "no" in out

    def test_corrupt_store_exits_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "corrupt.jsonl"
        bad.write_text("{not json\n")
        code = main(["tune", "predict", "awd", "--store", str(bad)])
        out = capsys.readouterr().out
        assert code == 2
        assert "cannot load run store" in out
        assert "corrupt.jsonl:1" in out

    def test_figure_tune_learned_renders(self, capsys):
        code = main(["figure", "tune-learned"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tune-learned" in out
        assert "learned_runs" in out


class TestSched:
    def test_sched_defaults(self):
        args = build_parser().parse_args(["sched"])
        assert args.scenario == "smoke"
        assert args.policy == "fair"
        assert args.seed == 0

    def test_sched_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sched", "--scenario", "weekend"])

    def test_sched_list(self, capsys):
        code = main(["sched", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "smoke" in out and "rush" in out and "hetero" in out

    def test_sched_smoke_fair_passes(self, capsys):
        code = main(["sched", "--scenario", "smoke", "--policy", "fair", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Verdict: PASS" in out
        assert "cluster utilization" in out
        assert "queue wait p95 (s)" in out
        assert "cross-check" in out

    def test_sched_json_and_artifacts(self, tmp_path, capsys):
        import json

        code = main([
            "sched", "--scenario", "smoke", "--policy", "fair", "--seed", "0",
            "--no-crosscheck", "--json", "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out[: out.rindex("}") + 1])
        assert payload["passed"] is True
        assert payload["util_improved"] is True
        assert (tmp_path / "sched_smoke_fair.log").exists()
        verdict = json.loads((tmp_path / "sched_verdict.json").read_text())
        assert verdict["candidate"]["policy"] == "fair"

    def test_sched_fifo_without_baseline_is_healthy(self, capsys):
        """No baseline → no self-comparison: the report must carry the
        single run's tables, not a verdict that can only read FAIL."""
        code = main(["sched", "--scenario", "smoke", "--policy", "fifo",
                     "--no-crosscheck"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Verdict" not in out
        assert "improved" not in out
        assert "Run complete" in out and "policy=fifo" in out
        assert out.count("Jobs — scenario=smoke") == 1
