"""Core Tensor semantics: construction, arithmetic, broadcasting, backward."""

import numpy as np
import pytest

from repro.tensor import Tensor, arange, full, no_grad, ones, tensor, zeros


class TestConstruction:
    def test_float_data_defaults_to_float32(self):
        t = tensor([1.0, 2.0])
        assert t.dtype == np.float32

    def test_explicit_dtype_respected(self):
        t = tensor([1.0], dtype=np.float64)
        assert t.dtype == np.float64

    def test_int_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_factories(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones(4).data.sum() == 4.0
        assert full((2, 2), 7.0).data[0, 0] == 7.0
        assert np.array_equal(arange(3).data, [0.0, 1.0, 2.0])

    def test_item_on_scalar(self):
        assert tensor(3.5).item() == pytest.approx(3.5)

    def test_item_on_vector_raises(self):
        with pytest.raises(ValueError):
            tensor([1.0, 2.0]).item()


class TestArithmetic:
    def test_add_backward_accumulates_to_both(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        b = tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_mul_backward(self):
        a = tensor([2.0, 3.0], requires_grad=True)
        b = tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5, 7])
        assert np.allclose(b.grad, [2, 3])

    def test_scalar_mixing(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        out = 3.0 * a + 1.0 - a / 2.0
        out.sum().backward()
        assert np.allclose(a.grad, [2.5, 2.5])

    def test_div_backward(self):
        a = tensor([6.0], requires_grad=True)
        b = tensor([3.0], requires_grad=True)
        (a / b).backward(np.array([1.0], dtype=np.float32))
        assert np.allclose(a.grad, [1 / 3])
        assert np.allclose(b.grad, [-6 / 9])

    def test_pow_backward(self):
        a = tensor([2.0], requires_grad=True)
        (a**3).sum().backward()
        assert np.allclose(a.grad, [12.0])

    def test_reuse_of_node_accumulates_gradient(self):
        a = tensor([1.0], requires_grad=True)
        out = a * a + a  # dout/da = 2a + 1 = 3
        out.sum().backward()
        assert np.allclose(a.grad, [3.0])

    def test_broadcast_add_reduces_gradient(self):
        a = tensor(np.ones((3, 4)), requires_grad=True)
        b = tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_broadcast_keepdim_axis(self):
        a = tensor(np.ones((3, 1)), requires_grad=True)
        b = tensor(np.ones((3, 5)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (3, 1)
        assert np.allclose(a.grad, 5.0)


class TestMatmul:
    def test_2d(self):
        a = tensor(np.random.rand(3, 4).astype(np.float32), requires_grad=True)
        b = tensor(np.random.rand(4, 5).astype(np.float32), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4, 5)

    def test_batched(self):
        a = tensor(np.random.rand(2, 3, 4).astype(np.float32), requires_grad=True)
        b = tensor(np.random.rand(2, 4, 5).astype(np.float32), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_batched_broadcast_rhs(self):
        a = tensor(np.random.rand(2, 3, 4).astype(np.float32), requires_grad=True)
        b = tensor(np.random.rand(4, 5).astype(np.float32), requires_grad=True)
        (a @ b).sum().backward()
        assert b.grad.shape == (4, 5)

    def test_vector_inner(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        b = tensor([3.0, 4.0], requires_grad=True)
        (a @ b).backward(np.float32(1.0))
        assert np.allclose(a.grad, [3, 4])
        assert np.allclose(b.grad, [1, 2])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        a = tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_mean_gradient_scaling(self):
        a = tensor(np.ones((4,), np.float32), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, 0.25)

    def test_max_gradient_flows_to_argmax(self):
        a = tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0, 1, 0])

    def test_reshape_roundtrip(self):
        a = tensor(np.random.rand(2, 6).astype(np.float32), requires_grad=True)
        a.reshape(3, 4).sum().backward()
        assert a.grad.shape == (2, 6)

    def test_transpose_backward(self):
        a = tensor(np.random.rand(2, 3).astype(np.float32), requires_grad=True)
        (a.T * tensor(np.arange(6, dtype=np.float32).reshape(3, 2))).sum().backward()
        assert a.grad.shape == (2, 3)

    def test_getitem_scatter_backward(self):
        a = tensor(np.zeros(5, np.float32), requires_grad=True)
        a[np.array([1, 1, 3])].sum().backward()
        assert np.allclose(a.grad, [0, 2, 0, 1, 0])  # repeated index accumulates

    def test_squeeze_unsqueeze(self):
        a = tensor(np.random.rand(2, 1, 3).astype(np.float32), requires_grad=True)
        a.squeeze(1).unsqueeze(0).sum().backward()
        assert a.grad.shape == (2, 1, 3)


class TestAutogradMachinery:
    def test_no_grad_suppresses_graph(self):
        a = tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out.is_leaf

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_grad_shape_checked(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward(np.zeros(3, np.float32))

    def test_detach_cuts_graph(self):
        a = tensor([1.0], requires_grad=True)
        out = (a * 2).detach() * 3
        assert not out.requires_grad

    def test_deep_chain_no_recursion_error(self):
        a = tensor([1.0], requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.sum().backward()
        assert np.allclose(a.grad, [1.0])

    def test_second_backward_accumulates_into_grad(self):
        a = tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 3).sum().backward()
        assert np.allclose(a.grad, [5.0])

    def test_zero_grad(self):
        a = tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None
