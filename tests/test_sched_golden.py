"""Golden regression test for the scheduler smoke artifact.

The benchmark suite regenerates ``benchmarks/results/sched_smoke.txt`` on
every run; this test pins it.  It re-runs the seeded FIFO-vs-fair-share
smoke scenario (including the elastic-oracle numerics cross-check),
re-renders the report exactly the way the benchmark does, and compares
byte-for-byte against the checked-in artifact — any drift in the arrival
generator, the chain planner, the admission predictor, the policies, or
the event loop fails loudly here instead of silently rewriting the golden
on the next benchmark run.
"""

import pathlib

from repro.sched import SchedVerdict, crosscheck_result, render_report, run_scenario

GOLDEN = (
    pathlib.Path(__file__).parent.parent
    / "benchmarks"
    / "results"
    / "sched_smoke.txt"
)


def render_sched_smoke() -> str:
    """Render the artifact exactly as benchmarks/test_sched_smoke.py emits it."""
    fifo = run_scenario("smoke", "fifo", seed=0)
    fair = run_scenario("smoke", "fair", seed=0)
    verdict = SchedVerdict(
        baseline=fifo,
        candidate=fair,
        crosschecks=crosscheck_result(fair, seed=0),
    )
    return render_report(verdict).rstrip("\n") + "\n"


def test_sched_artifact_matches_golden():
    assert GOLDEN.exists(), f"golden artifact missing: {GOLDEN}"
    fresh = render_sched_smoke()
    golden = GOLDEN.read_text()
    assert fresh == golden, (
        "sched artifact drifted from benchmarks/results/sched_smoke.txt; "
        "if the change is intentional, regenerate it with "
        "`PYTHONPATH=src python -m pytest benchmarks/test_sched_smoke.py`"
    )


def test_sched_render_is_deterministic():
    assert render_sched_smoke() == render_sched_smoke()
