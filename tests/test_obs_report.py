"""End-to-end tests for ``repro report`` and the RunReport builder.

Runs the CLI once (fig02 configuration, sim phase only) into a temp
directory, then asserts over the emitted artifacts: the Chrome trace is
valid Trace Event JSON, the run report round-trips through ``json``, and
its embedded Eq.-1 decomposition matches the trace recorder exactly.
"""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def report_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs_report")
    rc = main([
        "report", "--no-train", "--workload", "bert",
        "--iterations", "2", "--out", str(out),
    ])
    assert rc == 0
    return out


def test_report_writes_all_artifacts(report_dir):
    for name in ("trace.json", "run_report.json", "run_report.md"):
        assert (report_dir / name).exists(), name


def test_trace_artifact_is_valid_chrome_trace(report_dir):
    data = json.loads((report_dir / "trace.json").read_text())
    events = data["traceEvents"]
    assert events
    for e in events:
        assert e["ph"] in ("X", "M")
        if e["ph"] == "X":
            assert {"ts", "dur", "pid", "tid", "name", "cat"} <= set(e)


def test_run_report_eq1_matches_exactly(report_dir):
    report = json.loads((report_dir / "run_report.json").read_text())
    eq1 = report["eq1"]
    assert eq1["match"] is True
    assert all(eq1["exact_match"])
    # The JSON embeds both derivations; equality survives serialization.
    assert eq1["registry"] == eq1["trace"]
    assert len(eq1["trace"]) == report["num_stages"]


def test_run_report_carries_throughput_and_memory(report_dir):
    report = json.loads((report_dir / "run_report.json").read_text())
    assert report["samples_per_second"] > 0
    mem = report["memory"]
    assert len(mem["peak_bytes"]) == report["num_stages"]
    assert all(p > 0 for p in mem["peak_bytes"])
    assert all(
        w <= p for w, p in zip(mem["weight_peak_bytes"], mem["peak_bytes"])
    )
    assert report["metrics"]  # full registry snapshot embedded


def test_markdown_report_renders_verdict(report_dir):
    text = (report_dir / "run_report.md").read_text()
    assert "matches the TraceRecorder exactly" in text
    assert "Equation-1 time decomposition" in text
    assert "MISMATCH" not in text


def test_build_run_report_with_numerics_phase():
    from repro.obs import build_run_report

    report, exporter = build_run_report(
        workload="bert", iterations=1, train_epochs=1, seed=0
    )
    assert report.eq1_match
    n = report.numerics
    assert n["rounds"] > 0
    assert n["divergence"] >= 0
    assert n["samples"] > 0
    assert "Training telemetry" in report.to_markdown()
    assert json.loads(report.to_json())["numerics"]["rounds"] == n["rounds"]
    assert "GPU 0" in exporter.device_summary()


def test_report_rejects_data_parallel_baseline():
    from repro.obs import build_run_report

    with pytest.raises(ValueError, match="pipelined baseline"):
        build_run_report(baseline="pytorch")


class TestTunerSection:
    """The learned-tuner audit trail in the run report (tune.* gauges)."""

    def test_empty_registry_yields_no_section(self):
        from repro.obs import MetricRegistry, tuner_telemetry

        assert tuner_telemetry(MetricRegistry()) == {}

    def test_tuned_registry_renders_the_section(self):
        from repro.core.tuner import ProfilingTuner
        from repro.obs import MetricRegistry, tuner_telemetry
        from repro.obs.report import RunReport
        from repro.tune import RunStore
        from tests.test_core_predictor import make_profiler

        registry = MetricRegistry()
        outcome = ProfilingTuner(
            make_profiler(), 64 * 2**30, history=RunStore(), workload="awd"
        ).tune(m_candidates=[1, 2], n_candidates=[1, 2], registry=registry)
        telemetry = tuner_telemetry(registry)
        assert telemetry["records_consulted"] == 0
        assert telemetry["residual_applied"] is False
        assert telemetry["measured_batch_time"] == pytest.approx(
            outcome.measured_batch_time / outcome.n
        )

        report = RunReport(
            workload="awd", baseline="gpipe", num_stages=2, num_micro=2,
            iterations=1, num_pipelines=1, batch_time=0.1, total_time=0.1,
            samples_per_second=1.0, avg_utilization=0.5, tuner=telemetry,
        )
        text = report.to_markdown()
        assert "## Tuner (learned run-history layer)" in text
        assert "records consulted: 0" in text
        assert "residual applied: no" in text
        assert json.loads(report.to_json())["tuner"]["records_consulted"] == 0

    def test_report_without_tuner_run_has_no_section(self, report_dir):
        text = (report_dir / "run_report.md").read_text()
        assert "## Tuner" not in text
        report = json.loads((report_dir / "run_report.json").read_text())
        assert report["tuner"] == {}
