"""Engine corners: bounded runs, callback-after-trigger, nested processes."""

import pytest

from repro.sim import AllOf, Event, SharedResource, Simulator


class TestBoundedRun:
    def test_run_until_stops_the_clock(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(5.0)
            fired.append(sim.now)

        sim.process(proc())
        sim.run(until=2.0)
        assert sim.now == pytest.approx(2.0)
        assert fired == []
        sim.run()
        assert fired == [pytest.approx(5.0)]

    def test_run_until_process_time_limit(self):
        sim = Simulator()

        def slow():
            yield sim.timeout(100.0)

        proc = sim.process(slow())
        with pytest.raises(RuntimeError, match="time limit"):
            sim.run_until_process(proc, limit=1.0)


class TestCallbacks:
    def test_callback_added_after_trigger_fires_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("payload")
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["payload"]

    def test_all_of_with_already_fired_children(self):
        sim = Simulator()
        done = sim.event()
        done.succeed()
        pending = sim.timeout(1.0)
        barrier = AllOf(sim, [done, pending])
        sim.run()
        assert barrier.triggered


class TestNestedProcesses:
    def test_process_waits_on_subprocess_chain(self):
        sim = Simulator()
        log = []

        def leaf(tag, delay):
            yield sim.timeout(delay)
            log.append(tag)
            return tag

        def middle():
            value = yield sim.process(leaf("a", 1.0))
            value2 = yield sim.process(leaf(value + "b", 1.0))
            return value2

        def root():
            result = yield sim.process(middle())
            log.append("root:" + result)

        sim.process(root())
        sim.run()
        assert log == ["a", "ab", "root:ab"]
        assert sim.now == pytest.approx(2.0)

    def test_many_concurrent_resources_remain_deterministic(self):
        def run_once():
            sim = Simulator()
            res_a = SharedResource(sim, 10.0, name="a")
            res_b = SharedResource(sim, 5.0, name="b")
            finish = []

            def proc(i):
                yield res_a.execute(10.0 + i, 0.4)
                yield res_b.execute(5.0, 1.0)
                finish.append((i, sim.now))

            for i in range(6):
                sim.process(proc(i))
            sim.run()
            return finish

        assert run_once() == run_once()
