"""Property tests for the tuner run-history store (repro.tune.store).

The store is the learned tuner's ground truth, so its invariants are
load-bearing: byte-stable round-trips (a re-saved store is the same
file), injective fingerprints (distinct configs never alias), merge as
a commutative + idempotent line-set union (two machines' histories can
be combined in any order, any number of times), and loud typed failure
on any corrupted or truncated record (a silently skipped record would
bias the residual fit).
"""

import dataclasses
import json

import pytest

from repro.schedules import AdvanceFPSchedule, OneFOneBSchedule
from repro.sim import ClusterSpec
from repro.tune.store import (
    STORE_VERSION,
    RunStore,
    StoreCorruptError,
    StoreError,
    TuneRecord,
    as_store,
    canonical_json,
    cluster_fingerprint,
    config_fingerprint,
    record_run,
    run_context,
    schedule_label,
    tuner_context,
)

GIB = 2**30


def make_record(m=2, n=1, context="ctx0", measured=0.5, **overrides) -> TuneRecord:
    fields = dict(
        context=context,
        cluster="clu0",
        workload="awd",
        schedule="advance_fp(2)",
        k=4,
        m=m,
        n=n,
        predicted_batch_time=0.4,
        predicted_peak_bytes=1.0e9,
        measured_batch_time=measured,
        measured_peak_bytes=1.2e9,
        oom=False,
        degraded=False,
    )
    fields.update(overrides)
    return TuneRecord(**fields)


def make_spec(**overrides) -> ClusterSpec:
    fields = dict(nodes=2, gpus_per_node=2, memory_bytes=8 * GIB)
    fields.update(overrides)
    return ClusterSpec(**fields)


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_fingerprint_is_stable_hex(self):
        fp = config_fingerprint({"a": 1})
        assert fp == config_fingerprint({"a": 1})
        assert len(fp) == 16
        int(fp, 16)  # hex


class TestRoundTrip:
    def test_append_load_round_trip_is_byte_stable(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        for i, m in enumerate((1, 2, 4)):
            store.append(make_record(m=m, measured=0.5 + 0.01 * i))
        first = path.read_bytes()

        reloaded = RunStore.load(path)
        assert reloaded.records() == store.records()
        resaved = reloaded.save(tmp_path / "resaved.jsonl")
        assert resaved.read_bytes() == first

    def test_record_line_round_trip(self):
        record = make_record()
        assert TuneRecord.from_line(record.to_line()) == record

    def test_oom_record_round_trip(self):
        record = make_record(measured=None, measured_peak_bytes=None, oom=True)
        assert TuneRecord.from_line(record.to_line()) == record

    def test_path_bound_store_writes_through(self, tmp_path):
        path = tmp_path / "sub" / "runs.jsonl"
        store = RunStore(path)
        assert len(store) == 0 and not path.exists()
        store.append(make_record())
        assert path.exists()
        assert len(RunStore.load(path)) == 1


class TestFingerprints:
    def test_distinct_configs_distinct_fingerprints(self):
        base = make_record()
        seen = {base.fingerprint}
        for variant in (
            make_record(m=4),
            make_record(n=2),
            make_record(context="ctx1"),
        ):
            assert variant.fingerprint not in seen
            seen.add(variant.fingerprint)

    def test_fingerprint_ignores_measurement(self):
        """Same config, different measurement: one fingerprint (the
        store may hold repeated measurements of a config)."""
        assert make_record(measured=0.5).fingerprint == make_record(measured=0.7).fingerprint

    def test_cluster_fingerprint_sensitive_to_every_field(self):
        base = make_spec()
        fps = {cluster_fingerprint(base)}
        for spec in (
            make_spec(nodes=3),
            make_spec(memory_bytes=4 * GIB),
            make_spec(device_speed=(1.0, 1.0, 1.0, 0.5)),
            make_spec(device_memory_bytes=(8 * GIB,) * 3 + (4 * GIB,)),
        ):
            fp = cluster_fingerprint(spec)
            assert fp not in fps
            fps.add(fp)

    def test_run_context_distinguishes_schedule_and_batch(self):
        spec = make_spec()
        a = run_context(spec, "advance_fp(2)", 4, 64, workload="awd")
        b = run_context(spec, "1f1b(v1)", 4, 64, workload="awd")
        c = run_context(spec, "advance_fp(2)", 4, 32, workload="awd")
        assert len({a.context, b.context, c.context}) == 3
        assert a.cluster == b.cluster == c.cluster

    def test_schedule_label(self):
        assert schedule_label(AdvanceFPSchedule(2)) == "advance_fp(2)"
        assert schedule_label(OneFOneBSchedule(versions=1)) == "1f1b(v1)"


class TestMerge:
    def test_merge_commutative(self):
        a = RunStore.from_records([make_record(m=1), make_record(m=2)])
        b = RunStore.from_records([make_record(m=2), make_record(m=4)])
        ab = a.merge(b)
        ba = b.merge(a)
        assert [r.to_line() for r in ab.records()] == [
            r.to_line() for r in ba.records()
        ]
        assert len(ab) == 3  # the shared m=2 record deduplicates

    def test_merge_idempotent(self):
        a = RunStore.from_records([make_record(m=1), make_record(m=2)])
        once = a.merge(a)
        twice = once.merge(a)
        assert [r.to_line() for r in once.records()] == [
            r.to_line() for r in twice.records()
        ]
        assert len(once) == 2

    def test_merge_keeps_distinct_measurements_of_one_config(self):
        a = RunStore.from_records([make_record(measured=0.5)])
        b = RunStore.from_records([make_record(measured=0.7)])
        assert len(a.merge(b)) == 2

    def test_merge_output_is_byte_stable(self, tmp_path):
        a = RunStore.from_records([make_record(m=2), make_record(m=1)])
        b = RunStore.from_records([make_record(m=4)])
        one = a.merge(b).save(tmp_path / "one.jsonl").read_bytes()
        other = b.merge(a).save(tmp_path / "two.jsonl").read_bytes()
        assert one == other


class TestCorruption:
    def test_truncated_line_raises_typed_error(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(make_record())
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(StoreCorruptError):
            RunStore.load(path)

    def test_tampered_fingerprint_raises(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        payload = make_record().to_payload()
        payload["fingerprint"] = "0" * 16
        path.write_text(canonical_json(payload) + "\n")
        with pytest.raises(StoreCorruptError, match="fingerprint"):
            RunStore.load(path)

    def test_tampered_field_raises(self, tmp_path):
        """Editing a field invalidates the claimed fingerprint."""
        path = tmp_path / "runs.jsonl"
        payload = make_record().to_payload()
        payload["m"] = 16
        path.write_text(canonical_json(payload) + "\n")
        with pytest.raises(StoreCorruptError):
            RunStore.load(path)

    def test_unknown_and_missing_fields_raise(self):
        good = make_record().to_payload()
        extra = dict(good, bogus=1)
        with pytest.raises(StoreCorruptError, match="unknown"):
            TuneRecord.from_payload(extra)
        short = dict(good)
        del short["m"]
        with pytest.raises(StoreCorruptError, match="missing"):
            TuneRecord.from_payload(short)

    def test_wrong_version_raises(self):
        with pytest.raises(StoreCorruptError, match="version"):
            make_record(version=STORE_VERSION + 1)

    def test_nonsense_values_raise(self):
        with pytest.raises(StoreCorruptError):
            make_record(m=0)
        with pytest.raises(StoreCorruptError):
            make_record(predicted_batch_time=float("inf"))
        with pytest.raises(StoreCorruptError, match="non-OOM"):
            make_record(measured=None)

    def test_error_names_path_and_line(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(make_record().to_line() + "\n" + "{not json\n")
        with pytest.raises(StoreCorruptError, match=r"runs\.jsonl:2"):
            RunStore.load(path)

    def test_blank_line_raises(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(make_record().to_line() + "\n\n")
        with pytest.raises(StoreCorruptError, match="blank"):
            RunStore.load(path)


class TestAsStore:
    def test_none_passes_through(self):
        assert as_store(None) is None

    def test_store_passes_through(self):
        store = RunStore()
        assert as_store(store) is store

    def test_missing_path_yields_empty_bound_store(self, tmp_path):
        store = as_store(tmp_path / "new.jsonl")
        assert isinstance(store, RunStore) and len(store) == 0

    def test_bad_type_raises(self):
        with pytest.raises(StoreError):
            as_store(42)


class TestRecordRun:
    def test_record_run_measures_and_appends(self):
        from tests.test_core_predictor import make_profiler

        profiler = make_profiler(batch_size=16, k=2)
        store = RunStore()
        record = record_run(
            profiler, 4, 1, store=store, workload="toy", iterations=1
        )
        assert len(store) == 1 and store.records()[0] == record
        assert record.oom is False
        assert record.measured_batch_time > 0
        assert record.measured_peak_bytes > 0
        assert record.predicted_batch_time > 0
        assert record.k == profiler.partition.num_stages
        assert record.context == tuner_context(profiler, workload="toy").context

    def test_record_line_is_valid_strict_json(self):
        line = make_record().to_line()
        payload = json.loads(line)
        assert payload["version"] == STORE_VERSION
        assert payload["fingerprint"] == make_record().fingerprint
