"""`repro bench` harness tests.

Three properties the benchmark subsystem guarantees:

* the BENCH_<n>.json document is deterministic across two runs in the
  same environment once timings and allocation jitter are excluded —
  including each benchmark's ``check`` value, which is a *bitwise*
  checksum of the benchmarked computation;
* ``--compare`` is a regression gate: self-compare (file vs itself)
  exits 0, an injected >= 2x slowdown exits 1, and ``--report-only``
  never fails the exit code;
* the harness is observation-only: running a benchmark under the full
  instrumentation stack (registry + trace recorder + tracemalloc)
  produces bitwise the same numerics as calling the same thunk bare.
"""

import copy
import json

import pytest

from repro.cli import main
from repro.obs import MetricRegistry
from repro.obs.bench import (
    Benchmark,
    bench_catalog,
    compare_payloads,
    latest_bench_path,
    next_bench_path,
    render_compare,
    run_benchmark,
    run_suite,
    select_suite,
    suite_names,
    to_payload,
    write_payload,
    _seed_everything,
)


def _catalog_by_name() -> dict[str, Benchmark]:
    return {b.name: b for b in bench_catalog()}


def _fast_payload(repeats: int = 1) -> dict:
    """A real (but cheap) suite run: the 'core' group."""
    benches = select_suite("core")
    results, registry, _ = run_suite(benches, repeats=repeats, warmup=0, seed=0)
    return to_payload(results, "core", repeats, 0, 0, registry)


def _strip_volatile(payload: dict) -> dict:
    """Everything that may differ between two runs on one machine."""
    out = copy.deepcopy(payload)
    out.pop("timestamp", None)
    for bench in out["benchmarks"]:
        bench.pop("timing", None)
        bench.pop("alloc", None)
    return out


# --------------------------------------------------------------------- #
# catalog / suites


def test_catalog_covers_the_hot_paths():
    names = set(_catalog_by_name())
    # the acceptance floor: >= 8 distinct benchmarks over the Tier-1 paths
    assert len(names) >= 8
    for required in (
        "model.step.gnmt", "model.step.bert", "model.step.awd",
        "sim.events.large", "elastic.round", "checkpoint.roundtrip",
        "trace.export",
    ):
        assert required in names
    # one generation benchmark per registered schedule
    from repro.verify import VERIFIED_SCHEDULES

    for sched in VERIFIED_SCHEDULES:
        assert f"sched.gen.{sched}" in names


def test_suite_selection():
    assert [b.name for b in select_suite("full")] == [b.name for b in bench_catalog()]
    smoke = select_suite("smoke")
    assert all(b.smoke for b in smoke)
    assert {b.group for b in select_suite("sched")} == {"sched"}
    assert set(suite_names()) >= {"full", "smoke", "models", "sim", "sched", "core", "obs"}
    with pytest.raises(KeyError):
        select_suite("nope")


def test_next_bench_path_numbering(tmp_path):
    assert next_bench_path(tmp_path).name == "BENCH_1.json"
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_7.json").write_text("{}")
    (tmp_path / "BENCH_x.json").write_text("{}")  # non-matching: ignored
    assert next_bench_path(tmp_path).name == "BENCH_8.json"


def test_next_bench_path_numbers_past_gaps(tmp_path):
    # A deleted early baseline must not make a *new* run land in the gap
    # below the newest file: number after the max, not at the first hole.
    (tmp_path / "BENCH_2.json").write_text("{}")
    (tmp_path / "BENCH_5.json").write_text("{}")
    assert next_bench_path(tmp_path).name == "BENCH_6.json"


def test_latest_bench_path_picks_highest_n(tmp_path):
    assert latest_bench_path(tmp_path) is None
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_3.json").write_text("{}")   # gap at 2: irrelevant
    (tmp_path / "BENCH_10.json").write_text("{}")  # numeric, not lexicographic
    (tmp_path / "BENCH_x.json").write_text("{}")   # non-matching: ignored
    assert latest_bench_path(tmp_path).name == "BENCH_10.json"


# --------------------------------------------------------------------- #
# schema determinism


def test_payload_schema_deterministic_across_runs():
    first = _fast_payload()
    second = _fast_payload()
    assert _strip_volatile(first) == _strip_volatile(second)
    # and the stripped document still carries the full identity: schema
    # tag, environment fingerprint, params and the bitwise check values
    doc = _strip_volatile(first)
    assert doc["schema"] == "repro.obs.bench/v1"
    assert doc["environment"]["python"]
    assert doc["environment"]["calibration"]["awd"]["batch_size"] == 40
    for bench in doc["benchmarks"]:
        assert bench["name"] and bench["group"]


def test_payload_contents(tmp_path):
    payload = _fast_payload()
    for bench in payload["benchmarks"]:
        timing = bench["timing"]
        assert timing["repeats"] == len(timing["samples_s"]) == 1
        assert timing["median_s"] > 0
        assert timing["min_s"] <= timing["median_s"] <= timing["max_s"]
        assert bench["alloc"]["peak_bytes"] >= 0
    path = write_payload(payload, tmp_path)
    assert path.name == "BENCH_1.json"
    assert json.loads(path.read_text()) == payload


# --------------------------------------------------------------------- #
# compare verdicts


def _synthetic_payload(**medians_and_peaks) -> dict:
    benches = []
    for name, (median, peak) in medians_and_peaks.items():
        benches.append({
            "name": name,
            "group": "x",
            "params": {},
            "check": None,
            "timing": {"repeats": 3, "warmup": 1, "median_s": median,
                       "iqr_s": 0.0, "mean_s": median, "min_s": median,
                       "max_s": median, "samples_s": [median] * 3},
            "alloc": {"peak_bytes": peak, "net_bytes": 0, "net_blocks": 0},
        })
    return {"schema": "repro.obs.bench/v1", "suite": "x", "repeats": 3,
            "warmup": 1, "seed": 0, "environment": {}, "benchmarks": benches}


def test_compare_flags_time_and_alloc_regressions():
    base = _synthetic_payload(a=(1.0, 1000), b=(1.0, 1000), c=(1.0, 1000))
    cur = _synthetic_payload(a=(2.0, 1000),   # 2x slower
                             b=(1.0, 2000),   # 2x more peak allocation
                             c=(1.2, 1100))   # inside the 25% threshold
    report = compare_payloads(base, cur)
    verdicts = {r.name: r.regressed for r in report.rows}
    assert verdicts == {"a": True, "b": True, "c": False}
    a = next(r for r in report.rows if r.name == "a")
    assert a.time_ratio == pytest.approx(2.0)
    assert "wall time" in a.reasons[0]


def test_compare_ignores_disjoint_benchmarks():
    base = _synthetic_payload(a=(1.0, 1000), only_base=(1.0, 1000))
    cur = _synthetic_payload(a=(1.0, 1000), only_cur=(99.0, 1000))
    report = compare_payloads(base, cur)
    assert report.ok
    assert report.only_in_baseline == ["only_base"]
    assert report.only_in_current == ["only_cur"]


def test_compare_threshold_is_configurable():
    base = _synthetic_payload(a=(1.0, 1000))
    cur = _synthetic_payload(a=(1.2, 1000))
    assert compare_payloads(base, cur, threshold=0.25).ok
    assert not compare_payloads(base, cur, threshold=0.1).ok
    with pytest.raises(ValueError):
        compare_payloads(base, cur, threshold=-1)


def test_compare_time_threshold_splits_from_alloc():
    # 3x slower but identical allocation: a tight shared threshold flags
    # it, a wide time_threshold tolerates it (cross-machine gate) while
    # the alloc gate stays at the shared threshold.
    base = _synthetic_payload(a=(1.0, 1000), b=(1.0, 1000))
    cur = _synthetic_payload(a=(3.0, 1000),   # 3x slower, same alloc
                             b=(1.0, 1800))   # same speed, 1.8x alloc
    assert not compare_payloads(base, cur, threshold=0.5).ok
    report = compare_payloads(base, cur, threshold=0.5, time_threshold=4.0)
    verdicts = {r.name: r.regressed for r in report.rows}
    assert verdicts == {"a": False, "b": True}
    assert report.time_threshold == 4.0
    assert "time 400%" in render_compare(report)
    # explicit time_threshold equal to threshold behaves like the default
    same = compare_payloads(base, cur, threshold=0.5, time_threshold=0.5)
    assert same.time_threshold is None
    with pytest.raises(ValueError):
        compare_payloads(base, cur, time_threshold=-0.1)


# --------------------------------------------------------------------- #
# CLI: self-compare exits 0, injected 2x slowdown exits 1


@pytest.fixture(scope="module")
def bench_file(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("bench")
    payload = _fast_payload()
    return write_payload(payload, tmp / "BENCH_1.json")


def test_cli_self_compare_exits_zero(bench_file, capsys):
    code = main(["bench", "--input", str(bench_file), "--compare", str(bench_file)])
    assert code == 0
    assert "no regressions" in capsys.readouterr().out


def test_cli_injected_slowdown_exits_nonzero(bench_file, tmp_path, capsys):
    baseline = json.loads(bench_file.read_text())
    for bench in baseline["benchmarks"]:
        # an injected 2x slowdown: the current run's medians are twice
        # the baseline's
        bench["timing"]["median_s"] /= 2.0
    slow_base = tmp_path / "BENCH_base.json"
    slow_base.write_text(json.dumps(baseline))
    code = main(["bench", "--input", str(bench_file), "--compare", str(slow_base)])
    assert code == 1
    assert "REGRESSED" in capsys.readouterr().out

    # report-only mode prints the same verdicts but never fails
    code = main(["bench", "--input", str(bench_file), "--compare", str(slow_base),
                 "--report-only"])
    assert code == 0


def test_cli_bare_compare_uses_newest_baseline(bench_file, tmp_path, monkeypatch, capsys):
    """Bare ``--compare`` resolves to the highest-numbered BENCH_<n>.json."""
    monkeypatch.chdir(tmp_path)
    payload = json.loads(bench_file.read_text())
    # Decoy baseline at n=1 whose medians are halved (the current run
    # would read as a 2x regression against it), real baseline at n=3
    # with a gap at 2: only the newest file self-compares clean.
    decoy = copy.deepcopy(payload)
    for bench in decoy["benchmarks"]:
        bench["timing"]["median_s"] /= 2.0
    (tmp_path / "BENCH_1.json").write_text(json.dumps(decoy))
    (tmp_path / "BENCH_3.json").write_text(json.dumps(payload))
    code = main(["bench", "--input", str(bench_file), "--compare"])
    out = capsys.readouterr().out
    assert code == 0
    assert "BENCH_3.json" in out
    assert "no regressions" in out


def test_cli_bare_compare_without_baseline_exits_two(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    code = main(["bench", "--input", "unused.json", "--compare"])
    assert code == 2
    assert "no BENCH_<n>.json baseline" in capsys.readouterr().out


def test_cli_runs_and_writes(tmp_path, capsys):
    out = tmp_path / "out.json"
    code = main(["bench", "--suite", "sched", "--repeats", "1", "--warmup", "0",
                 "--out", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["suite"] == "sched"
    assert len(payload["benchmarks"]) == len(select_suite("sched"))
    assert "repro bench" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# instrumentation is observation-only


def test_instrumented_run_is_bitwise_identical_to_bare():
    """The harness (registry + trace + tracemalloc) must not perturb the
    computation it measures: replaying the same seeded thunk the same
    number of times bare yields bitwise the same scalar."""
    from repro.sim.trace import TraceRecorder

    bench = _catalog_by_name()["model.step.awd"]
    repeats, warmup = 2, 1
    registry = MetricRegistry()
    result = run_benchmark(
        bench, repeats=repeats, warmup=warmup, seed=0,
        registry=registry, trace=TraceRecorder(), trace_origin=0.0,
    )
    assert isinstance(result.check, float)

    # bare replay: same seeding, same call count (warmup + timed + alloc)
    _seed_everything(0)
    thunk = bench.setup(0)
    for _ in range(warmup + repeats):
        thunk()
    bare = thunk()
    assert bare == result.check  # bitwise, not approximately

    # and the registry mirrored exactly the timed repeats
    hist = registry.get("bench.wall_seconds", benchmark=bench.name)
    assert hist is not None and hist.count == repeats


def test_run_without_registry_records_nothing_and_matches():
    bench = _catalog_by_name()["elastic.round"]
    with_reg = run_benchmark(bench, repeats=1, warmup=0, seed=3,
                             registry=MetricRegistry())
    without = run_benchmark(bench, repeats=1, warmup=0, seed=3, registry=None)
    assert with_reg.check == without.check


def test_run_benchmark_rejects_zero_repeats():
    bench = _catalog_by_name()["sched.gen.afab"]
    with pytest.raises(ValueError):
        run_benchmark(bench, repeats=0)


# --------------------------------------------------------------------- #
# calibrate gauges reach the fingerprint


def test_calibrate_publishes_gauges_into_fingerprint():
    from repro.core.calibrate import run_calibration
    from repro.core.simcfg import calibration_for
    from repro.obs.bench import fingerprint

    registry = MetricRegistry()
    rows = run_calibration(calibration_for("awd"), registry=registry)
    assert any(r.system.startswith("avgpipe") and r.feasible for r in rows)
    fp = fingerprint(registry)
    gauges = fp["calibration_gauges"]
    assert any(k.startswith("calibrate.batch_ms") for k in gauges)
    # strict-JSON safety: no inf/nan survives into the fingerprint
    assert all(v is None or v == v and abs(v) != float("inf") for v in gauges.values())


def test_calibrate_cli_prints_matrix(capsys):
    code = main(["calibrate", "awd"])
    assert code == 0
    out = capsys.readouterr().out
    assert "calibration — awd" in out
    assert "avgpipe" in out
