"""Light smoke tests of the figure harness (cheap subsets only —
the full grids run in benchmarks/)."""

import numpy as np
import pytest

from repro.experiments import run_fig02, run_fig07, run_fig13, run_fig17


class TestFig07:
    def test_rows_and_orderings(self):
        data = run_fig07()
        rows = {r.schedule: r for r in data["rows"]}
        assert set(rows) == {"AFAB", "1F1B", "advance-FP(1)"}
        assert rows["AFAB"].batch_time <= rows["advance-FP(1)"].batch_time
        assert rows["1F1B"].peak_memory < rows["AFAB"].peak_memory
        assert "GPU 1" in rows["AFAB"].timeline


class TestFig02:
    def test_trace_statistics(self):
        data = run_fig02("bert")
        for name, d in data.items():
            assert 0 < d["peak"] <= 1.0
            assert 0 <= d["idle_fraction"] <= 1.0
            assert d["mean"] <= d["peak"]


class TestFig17SingleWorkload:
    def test_awd_schedules_coincide(self):
        data = run_fig17(workloads=("awd",))
        times = [r.iter_time for r in data["rows"]]
        assert max(times) == pytest.approx(min(times), rel=1e-9)


class TestFig13SingleWorkload:
    def test_awd_avgpipe_gains(self):
        data = run_fig13(workloads=("awd",))
        assert data["improvement_pct"]["awd"] > 0
        systems = [r.system for r in data["rows"]]
        assert "AvgPipe" in systems
