"""Bitwise gates for the fused hot-path ops.

Every fused kernel in ``repro.tensor.functional`` (and the buffer-reuse
``LSTM.forward``) replaced a composed Tensor-op chain *without changing a
single bit of output*.  These tests pin that contract: forward values and
every gradient must be bit-identical (``np.array_equal``, NaN-safe) to
the composed reference, in both float32 and float64.
"""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.tensor.functional import _sigmoid_raw, dropout, sigmoid, softmax
from repro.tensor.functional import tanh as ftanh


def _bits_equal(name, a, b):
    a = np.asarray(a)
    b = np.asarray(b)
    assert np.array_equal(a, b, equal_nan=True), (
        f"{name}: max diff "
        f"{np.abs(a.astype(np.float64) - b.astype(np.float64)).max()}"
    )


# --------------------------------------------------------------------- #
# sigmoid: branch-free form vs the masked sign-split


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_sigmoid_raw_matches_masked_reference_bitwise(dtype):
    rng = np.random.default_rng(0)
    x = (rng.standard_normal((64, 128)) * 6).astype(dtype)
    ref = np.empty_like(x)
    pos = x >= 0
    ref[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    ref[~pos] = ex / (1.0 + ex)
    uint = np.uint32 if dtype == np.float32 else np.uint64
    assert (_sigmoid_raw(x).view(uint) == ref.view(uint)).all()


# --------------------------------------------------------------------- #
# linear: fused matmul+bias vs x @ W.T + b


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("shape", [(8, 16), (4, 7, 16)])
def test_linear_matches_composed_bitwise(dtype, shape):
    rng = np.random.default_rng(1)
    xv = rng.standard_normal(shape).astype(dtype)
    wv = rng.standard_normal((5, 16)).astype(dtype)
    bv = rng.standard_normal((5,)).astype(dtype)
    g = rng.standard_normal(shape[:-1] + (5,)).astype(dtype)

    x1, w1, b1 = (Tensor(v.copy(), requires_grad=True) for v in (xv, wv, bv))
    out1 = x1 @ w1.T + b1
    out1.backward(g)

    x2, w2, b2 = (Tensor(v.copy(), requires_grad=True) for v in (xv, wv, bv))
    out2 = F.linear(x2, w2, b2)
    out2.backward(g)

    _bits_equal("fwd", out1.data, out2.data)
    _bits_equal("dx", x1.grad, x2.grad)
    _bits_equal("dw", w1.grad, w2.grad)
    _bits_equal("db", b1.grad, b2.grad)


# --------------------------------------------------------------------- #
# lstm_cell: fused gate stack vs the composed chain, unrolled T steps


def _composed_cell(x, h, c, wih, whh, bias, hs):
    gates = x @ wih.T + h @ whh.T + bias
    i = sigmoid(gates[:, 0 * hs : 1 * hs])
    f = sigmoid(gates[:, 1 * hs : 2 * hs])
    g = ftanh(gates[:, 2 * hs : 3 * hs])
    o = sigmoid(gates[:, 3 * hs : 4 * hs])
    c_next = f * c + i * g
    h_next = o * ftanh(c_next)
    return h_next, c_next


def _lstm_fixture(dtype, B=8, D=10, H=12, T=6, seed=2):
    rng = np.random.default_rng(seed)
    return {
        "wih": rng.standard_normal((4 * H, D)).astype(dtype),
        "whh": rng.standard_normal((4 * H, H)).astype(dtype),
        "bias": rng.standard_normal((4 * H,)).astype(dtype),
        "xs": [rng.standard_normal((B, D)).astype(dtype) for _ in range(T)],
        "gh": rng.standard_normal((B, H)).astype(dtype),
        "gc": rng.standard_normal((B, H)).astype(dtype),
        "B": B, "H": H, "T": T,
    }


def _run_lstm_chain(fix, dtype, fused: bool):
    wih = Tensor(fix["wih"].copy(), requires_grad=True)
    whh = Tensor(fix["whh"].copy(), requires_grad=True)
    bias = Tensor(fix["bias"].copy(), requires_grad=True)
    xts = [Tensor(v.copy(), requires_grad=True) for v in fix["xs"]]
    h = Tensor(np.zeros((fix["B"], fix["H"]), dtype))
    c = Tensor(np.zeros((fix["B"], fix["H"]), dtype))
    for t in range(fix["T"]):
        if fused:
            h, c = F.lstm_cell(xts[t], h, c, wih, whh, bias, fix["H"])
        else:
            h, c = _composed_cell(xts[t], h, c, wih, whh, bias, fix["H"])
    # drive gradients through BOTH outputs
    loss = (h * Tensor(fix["gh"])).sum() + (c * Tensor(fix["gc"])).sum()
    loss.backward()
    return h.data, c.data, wih.grad, whh.grad, bias.grad, [x.grad for x in xts]


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_lstm_cell_chain_matches_composed_bitwise(dtype):
    fix = _lstm_fixture(dtype)
    h1, c1, gw1, gu1, gb1, gx1 = _run_lstm_chain(fix, dtype, fused=False)
    h2, c2, gw2, gu2, gb2, gx2 = _run_lstm_chain(fix, dtype, fused=True)
    _bits_equal("h", h1, h2)
    _bits_equal("c", c1, c2)
    _bits_equal("dwih", gw1, gw2)
    _bits_equal("dwhh", gu1, gu2)
    _bits_equal("db", gb1, gb2)
    for t in range(fix["T"]):
        _bits_equal(f"dx[{t}]", gx1[t], gx2[t])


def test_lstm_cell_c_only_loss_still_drives_gradients():
    # A loss reaching only c_next (gradcheck-style) must flow through the
    # stashed-cell-gradient plumbing identically to the composed form.
    dtype = np.float64
    fix = _lstm_fixture(dtype, T=1)

    def run(fused):
        wih = Tensor(fix["wih"].copy(), requires_grad=True)
        xt = Tensor(fix["xs"][0].copy(), requires_grad=True)
        whh = Tensor(fix["whh"].copy(), requires_grad=True)
        bias = Tensor(fix["bias"].copy(), requires_grad=True)
        h0 = Tensor(np.zeros((fix["B"], fix["H"]), dtype))
        c0 = Tensor(np.zeros((fix["B"], fix["H"]), dtype))
        fn = F.lstm_cell if fused else _composed_cell
        args = (xt, h0, c0, wih, whh, bias, fix["H"])
        _, c = fn(*args)
        c.sum().backward()
        return wih.grad, xt.grad

    gw1, gx1 = run(fused=False)
    gw2, gx2 = run(fused=True)
    _bits_equal("c-only dwih", gw1, gw2)
    _bits_equal("c-only dx", gx1, gx2)


# --------------------------------------------------------------------- #
# scaled_dot_attention: fused softmax-attention vs the composed chain


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("use_mask", [False, True])
@pytest.mark.parametrize("p", [0.0, 0.3])
def test_attention_matches_composed_bitwise(dtype, use_mask, p):
    rng = np.random.default_rng(3)
    B, Hh, Tq, Tk, dh = 2, 3, 5, 7, 4
    qv = rng.standard_normal((B, Hh, Tq, dh)).astype(dtype)
    kv = rng.standard_normal((B, Hh, Tk, dh)).astype(dtype)
    vv = rng.standard_normal((B, Hh, Tk, dh)).astype(dtype)
    g = rng.standard_normal((B, Hh, Tq, dh)).astype(dtype)
    scale = 1.0 / np.sqrt(dh)
    bias_arr = None
    if use_mask:
        m = rng.random((B, 1, Tq, Tk)) < 0.8
        bias_arr = np.where(m, 0.0, -1e9).astype(dtype)

    q1, k1, v1 = (Tensor(v.copy(), requires_grad=True) for v in (qv, kv, vv))
    scores = (q1 @ k1.transpose(0, 1, 3, 2)) * scale
    if bias_arr is not None:
        scores = scores + Tensor(bias_arr)
    attn = softmax(scores, axis=-1)
    attn = dropout(attn, p, np.random.default_rng(42), training=True)
    out1 = attn @ v1
    out1.backward(g)

    q2, k2, v2 = (Tensor(v.copy(), requires_grad=True) for v in (qv, kv, vv))
    out2 = F.scaled_dot_attention(
        q2, k2, v2, scale=scale, bias=bias_arr,
        dropout_p=p, rng=np.random.default_rng(42), training=True,
    )
    out2.backward(g)

    _bits_equal("fwd", out1.data, out2.data)
    _bits_equal("dq", q1.grad, q2.grad)
    _bits_equal("dk", k1.grad, k2.grad)
    _bits_equal("dv", v1.grad, v2.grad)


# --------------------------------------------------------------------- #
# LSTM.forward: preallocated stacked buffer vs stack()-of-steps


def test_lstm_forward_matches_stack_of_steps_bitwise():
    from repro.nn.recurrent import LSTM

    T, B, D, H = 7, 4, 6, 5
    rng = np.random.default_rng(4)
    xv = rng.standard_normal((T, B, D)).astype(np.float32)
    g = rng.standard_normal((T, B, H)).astype(np.float32)

    def run(composed: bool):
        lstm = LSTM(D, H).seed(11)
        x = Tensor(xv.copy(), requires_grad=True)
        if composed:
            # The form LSTM.forward replaced: step the cell and stack().
            h, c = lstm.cell.init_state(B)
            steps = []
            for t in range(T):
                h, c = lstm.cell(x[t], (h, c))
                steps.append(h)
            out = F.stack(steps, axis=0)
        else:
            out, (h, c) = lstm(x)
        out.backward(g)
        grads = {name: p.grad for name, p in lstm.named_parameters()}
        return out.data, h.data, c.data, x.grad, grads

    o1, h1, c1, gx1, gp1 = run(composed=True)
    o2, h2, c2, gx2, gp2 = run(composed=False)
    _bits_equal("outputs", o1, o2)
    _bits_equal("h_final", h1, h2)
    _bits_equal("c_final", c1, c2)
    _bits_equal("dx", gx1, gx2)
    assert gp1.keys() == gp2.keys() and gp1
    for name in gp1:
        _bits_equal(f"d{name}", gp1[name], gp2[name])
